// Copyright 2026 The AmnesiaDB Authors

#include "amnesia/area.h"

#include <algorithm>
#include <unordered_set>

namespace amnesia {

namespace {

/// Tracks rows selected in the current round so a row is never returned
/// twice even though the table has not marked it forgotten yet.
struct RoundState {
  const Table* table;
  std::unordered_set<RowId> chosen;

  bool Selectable(RowId r) const {
    return table->IsActive(r) && chosen.count(r) == 0;
  }
};

}  // namespace

StatusOr<std::vector<RowId>> AreaPolicy::SelectVictims(const Table& table,
                                                       size_t k, Rng* rng) {
  const uint64_t n = table.num_rows();
  const size_t want = std::min<size_t>(k, table.num_active());
  std::vector<RowId> victims;
  victims.reserve(want);
  RoundState state{&table, {}};

  auto seed_new_area = [&]() -> bool {
    // Random active starting point, uniform over the active population.
    const uint64_t remaining = table.num_active() - state.chosen.size();
    if (remaining == 0) return false;
    // Rejection-sample a selectable active row (the chosen set is small
    // relative to the active population in every round).
    for (int attempt = 0; attempt < 256; ++attempt) {
      const uint64_t idx = static_cast<uint64_t>(
          rng->UniformInt(0, static_cast<int64_t>(table.num_active()) - 1));
      const RowId r = table.NthActiveRow(idx);
      if (state.Selectable(r)) {
        victims.push_back(r);
        state.chosen.insert(r);
        areas_.push_back(Area{r, r});
        return true;
      }
    }
    // Dense fallback: linear scan for any selectable row.
    for (RowId r = 0; r < n; ++r) {
      if (state.Selectable(r)) {
        victims.push_back(r);
        state.chosen.insert(r);
        areas_.push_back(Area{r, r});
        return true;
      }
    }
    return false;
  };

  // Extends `area` one tuple outward in `dir` (-1 left, +1 right). Rows
  // that are already forgotten — or already chosen this round — are part
  // of the (future) hole and are skipped over, which also merges areas
  // that grow into each other. Fails only at the storage boundary.
  auto extend = [&](Area* area, int dir) -> bool {
    if (dir < 0) {
      RowId r = area->lo;
      while (r > 0) {
        --r;
        if (state.Selectable(r)) {
          victims.push_back(r);
          state.chosen.insert(r);
          area->lo = r;
          return true;
        }
      }
      return false;
    }
    RowId r = area->hi;
    while (r + 1 < n) {
      ++r;
      if (state.Selectable(r)) {
        victims.push_back(r);
        state.chosen.insert(r);
        area->hi = r;
        return true;
      }
    }
    return false;
  };

  auto extend_either = [&](Area* area, int first_dir) -> bool {
    return extend(area, first_dir) || extend(area, -first_dir);
  };

  while (victims.size() < want) {
    const size_t num_areas = areas_.size();
    const bool capped =
        options_.max_areas != 0 && num_areas >= options_.max_areas;
    // n in 1..K+1; K+1 means "start new mold".
    const int64_t draw =
        rng->UniformInt(1, static_cast<int64_t>(num_areas) + (capped ? 0 : 1));
    const bool start_new =
        !capped && draw == static_cast<int64_t>(num_areas) + 1;
    if (start_new || num_areas == 0) {
      if (!seed_new_area()) break;  // table exhausted
      continue;
    }
    const size_t drawn = static_cast<size_t>(draw) - 1;
    const int dir = rng->Bernoulli(0.5) ? 1 : -1;
    if (extend_either(&areas_[drawn], dir)) continue;
    // The drawn area is landlocked (touches both storage boundaries
    // through holes). Try the other areas before resorting to fresh mold,
    // so a configured area cap keeps holding.
    bool extended = false;
    for (size_t off = 1; off < num_areas && !extended; ++off) {
      extended = extend_either(&areas_[(drawn + off) % num_areas], dir);
    }
    if (extended) continue;
    if (!seed_new_area()) break;
  }
  return victims;
}

void AreaPolicy::OnCompaction(const RowMapping& mapping) {
  // Every row inside a mold area was forgotten, so compaction removed them
  // all; the coordinates are meaningless now. Start over.
  (void)mapping;
  areas_.clear();
}

}  // namespace amnesia
