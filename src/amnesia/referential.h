// Copyright 2026 The AmnesiaDB Authors
//
// Referential amnesia: forgetting in the presence of foreign keys (§5).
// Two semantics, mirroring SQL's ON DELETE options:
//   kRestrict — "forgetting a key value [is] forbidden unless it is not
//               referenced any more";
//   kCascade  — "cascade by forgetting all related tuples".

#ifndef AMNESIA_AMNESIA_REFERENTIAL_H_
#define AMNESIA_AMNESIA_REFERENTIAL_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "storage/database.h"

namespace amnesia {

/// \brief What to do with active child rows referencing a forgotten value.
enum class ReferentialAction : int {
  kRestrict = 0,
  kCascade = 1,
};

/// \brief Outcome of a referential forget.
struct ReferentialForgetResult {
  /// Tuples forgotten per table (including the requested one).
  std::vector<std::pair<std::string, uint64_t>> forgotten_per_table;
  /// Total tuples forgotten.
  uint64_t total = 0;
};

/// \brief Coordinates forgetting across a database's foreign-key graph.
///
/// Forgetting is value-based, like the constraints themselves: a parent
/// row may only become invisible when no *active* parent row still carries
/// the same key value — otherwise children remain validly referenced and
/// nothing cascades.
class ReferentialForgetter {
 public:
  /// The database must outlive the forgetter.
  ReferentialForgetter(Database* db, ReferentialAction action)
      : db_(db), action_(action) {}

  /// Forgets `row` of `table`. Under kRestrict, fails with
  /// FailedPrecondition if the row holds the last active copy of a key
  /// value that active child rows still reference. Under kCascade,
  /// recursively forgets those child rows (and their children).
  /// Cycles in the FK graph are handled (each row is forgotten once).
  StatusOr<ReferentialForgetResult> Forget(const std::string& table,
                                           RowId row);

  /// Returns the configured action.
  ReferentialAction action() const { return action_; }

 private:
  Status ForgetRecursive(const std::string& table, RowId row,
                         ReferentialForgetResult* result);

  /// Returns true when another active row of `table` holds `value` in
  /// column `col` (so the key value stays visible after forgetting `row`).
  static bool ValueStillActiveElsewhere(const Table& table, size_t col,
                                        Value value, RowId excluding_row);

  Database* db_;
  ReferentialAction action_;
};

}  // namespace amnesia

#endif  // AMNESIA_AMNESIA_REFERENTIAL_H_
