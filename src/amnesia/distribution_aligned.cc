// Copyright 2026 The AmnesiaDB Authors

#include "amnesia/distribution_aligned.h"

#include <algorithm>
#include <vector>

namespace amnesia {

StatusOr<std::vector<RowId>> DistributionAlignedPolicy::SelectVictims(
    const Table& table, size_t k, Rng* rng) {
  if (oracle_ == nullptr) {
    return Status::InvalidArgument("aligned policy needs an oracle");
  }
  if (options_.col >= table.num_columns()) {
    return Status::InvalidArgument("aligned policy column out of range");
  }
  if (options_.num_buckets == 0) {
    return Status::InvalidArgument("aligned policy needs >= 1 bucket");
  }
  std::vector<RowId> victims;
  const size_t want = std::min<size_t>(k, table.num_active());
  if (want == 0) return victims;
  if (oracle_->size() == 0) {
    return Status::FailedPrecondition("oracle history is empty");
  }

  const Value lo = oracle_->min_seen();
  const Value hi = oracle_->max_seen() + 1;
  const size_t buckets = options_.num_buckets;
  const double width =
      static_cast<double>(hi - lo) / static_cast<double>(buckets);

  auto bucket_of = [&](Value v) -> size_t {
    if (v < lo) return 0;
    if (v >= hi) return buckets - 1;
    const size_t b =
        static_cast<size_t>(static_cast<double>(v - lo) / width);
    return std::min(b, buckets - 1);
  };

  // Reference shape: fraction of the full history per bucket.
  std::vector<double> target(buckets, 0.0);
  const double total_history = static_cast<double>(oracle_->size());
  for (size_t b = 0; b < buckets; ++b) {
    const Value b_lo = lo + static_cast<Value>(width * static_cast<double>(b));
    const Value b_hi =
        b + 1 == buckets
            ? hi
            : lo + static_cast<Value>(width * static_cast<double>(b + 1));
    AMNESIA_ASSIGN_OR_RETURN(const uint64_t c,
                             oracle_->CountRange(b_lo, b_hi));
    target[b] = static_cast<double>(c) / total_history;
  }

  // Active rows per bucket.
  std::vector<std::vector<RowId>> members(buckets);
  table.active_bitmap().ForEachSet([&](size_t r) {
    members[bucket_of(table.value(options_.col, r))].push_back(r);
  });

  double active_total = static_cast<double>(table.num_active());
  victims.reserve(want);
  while (victims.size() < want && active_total > 0.0) {
    // Most over-represented bucket that still has members.
    size_t best = buckets;
    double best_surplus = -1e300;
    for (size_t b = 0; b < buckets; ++b) {
      if (members[b].empty()) continue;
      const double frac =
          static_cast<double>(members[b].size()) / active_total;
      const double surplus = frac - target[b];
      if (surplus > best_surplus) {
        best_surplus = surplus;
        best = b;
      }
    }
    if (best == buckets) break;
    auto& pool = members[best];
    const size_t pick = rng->UniformIndex(pool.size());
    victims.push_back(pool[pick]);
    pool[pick] = pool.back();
    pool.pop_back();
    active_total -= 1.0;
  }
  return victims;
}

}  // namespace amnesia
