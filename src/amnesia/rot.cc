// Copyright 2026 The AmnesiaDB Authors

#include "amnesia/rot.h"

#include <algorithm>
#include <unordered_set>

namespace amnesia {

StatusOr<std::vector<RowId>> RotPolicy::SelectVictims(const Table& table,
                                                      size_t k, Rng* rng) {
  if (options_.smoothing <= 0.0) {
    return Status::InvalidArgument("rot smoothing must be positive");
  }
  const std::vector<RowId> active = table.ActiveRows();
  const size_t want = std::min(k, active.size());

  // High-water mark: only tuples old enough are eligible to rot.
  const BatchId current = table.current_batch();
  const BatchId protect = options_.protect_latest_batches;
  std::vector<RowId> eligible;
  std::vector<RowId> young;
  eligible.reserve(active.size());
  for (RowId r : active) {
    const BatchId b = table.batch_of(r);
    const bool protected_row = b + protect > current;
    if (protected_row) {
      young.push_back(r);
    } else {
      eligible.push_back(r);
    }
  }

  std::vector<double> weights(eligible.size());
  for (size_t i = 0; i < eligible.size(); ++i) {
    weights[i] = 1.0 / (options_.smoothing +
                        static_cast<double>(table.access_count(eligible[i])));
  }
  std::vector<size_t> picks =
      rng->WeightedSampleWithoutReplacement(weights, want);
  std::vector<RowId> victims;
  victims.reserve(want);
  for (size_t p : picks) victims.push_back(eligible[p]);

  if (victims.size() < want) {
    // Budget pressure exceeds the rot-eligible population: take the
    // least-accessed young tuples to make up the difference.
    std::vector<double> young_weights(young.size());
    for (size_t i = 0; i < young.size(); ++i) {
      young_weights[i] =
          1.0 / (options_.smoothing +
                 static_cast<double>(table.access_count(young[i])));
    }
    const std::vector<size_t> extra = rng->WeightedSampleWithoutReplacement(
        young_weights, want - victims.size());
    for (size_t p : extra) victims.push_back(young[p]);
  }
  return victims;
}

}  // namespace amnesia
