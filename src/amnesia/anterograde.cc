// Copyright 2026 The AmnesiaDB Authors

#include "amnesia/anterograde.h"

#include <cmath>

namespace amnesia {

StatusOr<std::vector<RowId>> AnterogradePolicy::SelectVictims(
    const Table& table, size_t k, Rng* rng) {
  if (beta_ < 0.0) {
    return Status::InvalidArgument("anterograde beta must be non-negative");
  }
  const std::vector<RowId> active = table.ActiveRows();
  const size_t n = active.size();
  std::vector<double> weights(n);
  for (size_t i = 0; i < n; ++i) {
    // Active rows are in storage == insertion order; rank by position.
    const double rank =
        (static_cast<double>(i) + 1.0) / static_cast<double>(n);
    weights[i] = std::pow(rank, beta_);
  }
  const std::vector<size_t> picks =
      rng->WeightedSampleWithoutReplacement(weights, k);
  std::vector<RowId> victims;
  victims.reserve(picks.size());
  for (size_t p : picks) victims.push_back(active[p]);
  return victims;
}

}  // namespace amnesia
