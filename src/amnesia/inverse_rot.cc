// Copyright 2026 The AmnesiaDB Authors

#include "amnesia/inverse_rot.h"

namespace amnesia {

StatusOr<std::vector<RowId>> InverseRotPolicy::SelectVictims(
    const Table& table, size_t k, Rng* rng) {
  const std::vector<RowId> active = table.ActiveRows();
  std::vector<double> weights(active.size());
  for (size_t i = 0; i < active.size(); ++i) {
    weights[i] = static_cast<double>(table.access_count(active[i]));
  }
  // WeightedSampleWithoutReplacement falls back to zero-weight items only
  // when the positive-weight (i.e. ever-accessed) pool runs dry.
  const std::vector<size_t> picks =
      rng->WeightedSampleWithoutReplacement(weights, k);
  std::vector<RowId> victims;
  victims.reserve(picks.size());
  for (size_t p : picks) victims.push_back(active[p]);
  return victims;
}

}  // namespace amnesia
