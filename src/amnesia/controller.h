// Copyright 2026 The AmnesiaDB Authors
//
// The amnesia controller enforces the storage budget after every update
// batch and routes every forgotten tuple through a forgetting backend —
// the paper's four answers to "what happens to forgotten data" (§1):
// mark-only, physical delete, cold storage, or summary; plus index-skip
// ("stop indexing the forgotten data").

#ifndef AMNESIA_AMNESIA_CONTROLLER_H_
#define AMNESIA_AMNESIA_CONTROLLER_H_

#include <cstdint>
#include <string_view>

#include "amnesia/audit_ledger.h"
#include "amnesia/policy.h"
#include "common/rng.h"
#include "common/status.h"
#include "durability/event_log.h"
#include "index/index_manager.h"
#include "obs/sla.h"
#include "storage/cold_store.h"
#include "storage/summary_store.h"
#include "storage/table.h"

namespace amnesia {

/// \brief What physically happens to a forgotten tuple.
enum class BackendKind : int {
  /// Tuple stays in storage, marked inactive (the simulator's mode: full
  /// scans can still see it, amnesic plans cannot).
  kMarkOnly = 0,
  /// Tuple payload is scrubbed and periodically compacted away — "as
  /// radical as to delete all data being forgotten".
  kDelete = 1,
  /// Tuple is copied to the simulated cold tier before marking.
  kColdStorage = 2,
  /// Tuple folds into per-batch (count, sum, min, max) summaries before
  /// marking — aggregation queries stay answerable, details are gone.
  kSummary = 3,
  /// Tuple is erased from all maintained indexes; scans still see it.
  kIndexSkip = 4,
};

/// \brief Returns a stable name for a backend kind.
std::string_view BackendKindToString(BackendKind kind);

/// \brief How the budget is expressed.
enum class BudgetMode : int {
  /// Active tuple count stays exactly at `dbsize_budget` (the paper's
  /// experiments: "the database storage requirements ... remains constant
  /// and it is equal to DBSIZE").
  kFixedTupleCount = 0,
  /// Growth-bounded: forgetting starts only when the approximate byte
  /// footprint exceeds `byte_high_water`, and shrinks the active count to
  /// `byte_low_water_fraction` of it (the paper's "if a database starts by
  /// using half of the available RAM, do not let it grow beyond the 90%
  /// mark").
  kByteHighWater = 1,
};

/// \brief Controller tuning.
struct ControllerOptions {
  BudgetMode mode = BudgetMode::kFixedTupleCount;
  /// kFixedTupleCount: the constant DBSIZE.
  uint64_t dbsize_budget = 1000;
  /// kByteHighWater: footprint that triggers amnesia.
  size_t byte_high_water = 64 * 1024 * 1024;
  /// kByteHighWater: after triggering, shrink until footprint is at most
  /// this fraction of the high water mark.
  double byte_low_water_fraction = 0.9;
  /// Backend applied to every forgotten tuple.
  BackendKind backend = BackendKind::kMarkOnly;
  /// Column whose value is preserved by cold/summary backends (the
  /// simulator is single-column; multi-column tables preserve this one).
  size_t payload_col = 0;
  /// kDelete: run physical compaction every N EnforceBudget calls
  /// (0 = never compact, scrub only).
  uint32_t compact_every_n_rounds = 1;
  /// kDelete: overwrite payloads of forgotten rows immediately.
  bool scrub_on_delete = true;
};

/// \brief Controller activity counters.
struct ControllerStats {
  uint64_t rounds = 0;             ///< EnforceBudget invocations.
  uint64_t tuples_forgotten = 0;   ///< Victims processed.
  uint64_t compactions = 0;        ///< Physical compactions run.
  uint64_t rows_compacted = 0;     ///< Rows removed by compaction.
  uint64_t partitions_dropped = 0; ///< Whole partitions forgotten O(1).
  uint64_t cold_evictions = 0;     ///< Tuples pushed to the cold tier.
  uint64_t summary_folds = 0;      ///< Tuples folded into summaries.
  uint64_t index_erases = 0;       ///< Tuples unhooked from indexes.
};

/// \brief Drives a policy + backend to keep one table within budget.
///
/// All pointers are borrowed and must outlive the controller. `indexes`,
/// `cold` and `summaries` may be null when the corresponding backend is
/// not used (validated at construction).
class AmnesiaController {
 public:
  /// Validates the wiring (backend vs. available tiers).
  static StatusOr<AmnesiaController> Make(const ControllerOptions& options,
                                          AmnesiaPolicy* policy, Table* table,
                                          IndexManager* indexes = nullptr,
                                          ColdStore* cold = nullptr,
                                          SummaryStore* summaries = nullptr);

  /// Applies amnesia so the budget holds again: selects victims via the
  /// policy, routes each through the backend, optionally compacts.
  /// No-op (except stats) when the table is within budget.
  Status EnforceBudget(Rng* rng);

  /// Returns how many tuples EnforceBudget would forget right now.
  uint64_t Overflow() const;

  /// Mandatory vacuuming (§5 privacy / TSQL2-style vacuuming): forgets
  /// EVERY active tuple inserted more than `max_age_batches` update
  /// batches ago, regardless of the storage budget. Routed through the
  /// configured backend, so a delete backend makes expiry physical and
  /// scrubbed (Data-Privacy-Act semantics: "observations ... should be
  /// forgotten within the legally defined time frame"). Returns the
  /// number of tuples vacuumed.
  StatusOr<uint64_t> VacuumExpired(uint32_t max_age_batches);

  /// Processing-time budgeting (§2.1 future work: "bounding the
  /// processing time for the workload"). If the executor's average rows
  /// examined per query exceeds `max_avg_rows_per_query`, permanently
  /// shrinks the tuple budget by `shrink_factor` (e.g. 0.9) and enforces
  /// it. Returns the new budget. Only meaningful in
  /// BudgetMode::kFixedTupleCount.
  StatusOr<uint64_t> AdaptBudgetToProcessingCost(
      double avg_rows_examined_per_query, double max_avg_rows_per_query,
      double shrink_factor, Rng* rng);

  /// Returns how many batches the oldest live row is past the
  /// `max_age_batches` retention deadline (0 = compliant). O(rows/64):
  /// rows are append-only with monotonic batches, so the oldest live row
  /// is the first set bit of the visibility bitmap.
  uint64_t ForgetLag(uint32_t max_age_batches) const;

  /// Returns activity counters.
  const ControllerStats& stats() const { return stats_; }

  /// Returns the options.
  const ControllerOptions& options() const { return options_; }

  /// Replaces the fixed tuple-count budget (BudgetMode::kFixedTupleCount
  /// only). The sharded controller's budget splitter re-apportions the
  /// global budget across shard controllers before every forget pass.
  void set_dbsize_budget(uint64_t budget) { options_.dbsize_budget = budget; }

  /// Journals every forget-pass outcome (forget, scrub, compaction) to
  /// `sink` as durability events addressed to `shard_id`, so crash
  /// recovery can redo them without the policy or its RNG. nullptr (the
  /// default) disables journaling. The sink is borrowed and must outlive
  /// the controller.
  void set_event_sink(EventSink* sink, uint32_t shard_id = 0) {
    event_sink_ = sink;
    event_shard_ = shard_id;
  }

  /// Attests every sweep that forgot anything to `ledger` (one hash-
  /// chained AuditRecord per sweep). When an event sink is wired, the
  /// sink is flushed BEFORE the ledger append so the ledger never claims
  /// a forget the journal has not durably seen (ledger ⊆ journal across
  /// any crash). `lsn_source`, when given, stamps each record with the
  /// journal position it is covered by. Both are borrowed and must
  /// outlive the controller; nullptr disables attestation.
  void set_audit_ledger(AuditLedger* ledger,
                        EventLogBase* lsn_source = nullptr) {
    audit_ledger_ = ledger;
    lsn_source_ = lsn_source;
  }

  /// Records forget lag and deletion latency into `tracker` from every
  /// VacuumExpired sweep. Borrowed; nullptr disables SLA sampling.
  void set_sla_tracker(obs::SlaTracker* tracker) { sla_ = tracker; }

 private:
  AmnesiaController(const ControllerOptions& options, AmnesiaPolicy* policy,
                    Table* table, IndexManager* indexes, ColdStore* cold,
                    SummaryStore* summaries)
      : options_(options),
        policy_(policy),
        table_(table),
        indexes_(indexes),
        cold_(cold),
        summaries_(summaries) {}

  /// Per-sweep audit accumulation; reset at sweep start, folded into one
  /// AuditRecord at sweep end. A member (not a parameter) so ForgetOne's
  /// signature stays put — controllers are externally synchronized per
  /// shard, so there is never more than one sweep in flight per instance.
  struct SweepAudit {
    uint64_t rows_marked = 0;
    uint64_t rows_scrubbed = 0;
    uint64_t partitions_dropped = 0;
    uint64_t tick_lo = UINT64_MAX;
    uint64_t tick_hi = 0;
  };

  Status ForgetOne(RowId row);
  Status RunCompaction();
  /// Flushes the event sink, then appends one AuditRecord summarizing the
  /// sweep accumulated in audit_. No-op for sweeps that forgot nothing or
  /// when no ledger is wired.
  Status FinishSweepAudit(AuditOp op);

  ControllerOptions options_;
  AmnesiaPolicy* policy_;
  Table* table_;
  IndexManager* indexes_;
  ColdStore* cold_;
  SummaryStore* summaries_;
  ControllerStats stats_;
  EventSink* event_sink_ = nullptr;
  uint32_t event_shard_ = 0;
  AuditLedger* audit_ledger_ = nullptr;
  EventLogBase* lsn_source_ = nullptr;
  obs::SlaTracker* sla_ = nullptr;
  SweepAudit audit_;
};

}  // namespace amnesia

#endif  // AMNESIA_AMNESIA_CONTROLLER_H_
