// Copyright 2026 The AmnesiaDB Authors

#ifndef AMNESIA_AMNESIA_INVERSE_ROT_H_
#define AMNESIA_AMNESIA_INVERSE_ROT_H_

#include "amnesia/policy.h"

namespace amnesia {

/// \brief The "totally opposite" query-based policy (§3.2 last paragraph):
/// forget data that has been used too frequently.
///
/// "If a tuple has been accessed too many times, then its role should be
/// reconsidered ... no data should continue to appear in a result set, if
/// that data has not been curated, analyzed, or consumed in any other
/// way." Victim weight is the access count itself; never-accessed tuples
/// are only forgotten when the hot set cannot cover the demand.
class InverseRotPolicy final : public AmnesiaPolicy {
 public:
  PolicyKind kind() const override { return PolicyKind::kInverseRot; }
  StatusOr<std::vector<RowId>> SelectVictims(const Table& table, size_t k,
                                             Rng* rng) override;
};

}  // namespace amnesia

#endif  // AMNESIA_AMNESIA_INVERSE_ROT_H_
