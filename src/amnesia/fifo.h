// Copyright 2026 The AmnesiaDB Authors

#ifndef AMNESIA_AMNESIA_FIFO_H_
#define AMNESIA_AMNESIA_FIFO_H_

#include "amnesia/policy.h"

namespace amnesia {

/// \brief Temporal sliding window (§3.1 FIFO-amnesia, retrograde).
///
/// Forgets the oldest active tuples first, so the table always holds the
/// most recent DBSIZE insertions — "all you can see is what's in the
/// stream buffer".
class FifoPolicy final : public AmnesiaPolicy {
 public:
  PolicyKind kind() const override { return PolicyKind::kFifo; }
  StatusOr<std::vector<RowId>> SelectVictims(const Table& table, size_t k,
                                             Rng* rng) override;
};

}  // namespace amnesia

#endif  // AMNESIA_AMNESIA_FIFO_H_
