// Copyright 2026 The AmnesiaDB Authors

#include "amnesia/sharded_controller.h"

#include <algorithm>
#include <numeric>
#include <utility>

#include "obs/engine_metrics.h"
#include "obs/trace.h"
#include "query/vector_kernels.h"

namespace amnesia {

std::vector<uint64_t> SplitBudget(uint64_t budget,
                                  const std::vector<uint64_t>& active) {
  const size_t n = active.size();
  std::vector<uint64_t> out(n, 0);
  if (n == 0) return out;

  const uint64_t total =
      std::accumulate(active.begin(), active.end(), uint64_t{0});
  if (total == 0) {
    // Nothing is active: split evenly so future ingest headroom is fair.
    const uint64_t base = budget / n;
    const uint64_t extra = budget % n;
    for (size_t s = 0; s < n; ++s) out[s] = base + (s < extra ? 1 : 0);
    return out;
  }

  // Proportional shares with largest-remainder rounding. 128-bit products
  // keep budget * active exact for any realistic sizes.
  std::vector<std::pair<uint64_t, size_t>> remainders;
  remainders.reserve(n);
  uint64_t assigned = 0;
  for (size_t s = 0; s < n; ++s) {
    const unsigned __int128 share =
        static_cast<unsigned __int128>(budget) * active[s];
    out[s] = static_cast<uint64_t>(share / total);
    assigned += out[s];
    remainders.emplace_back(static_cast<uint64_t>(share % total), s);
  }
  uint64_t leftover = budget - assigned;
  // Largest remainder first; ties go to the lower shard index so the
  // split is deterministic.
  std::sort(remainders.begin(), remainders.end(),
            [](const auto& a, const auto& b) {
              return a.first != b.first ? a.first > b.first
                                        : a.second < b.second;
            });
  for (size_t j = 0; j < remainders.size() && leftover > 0; ++j, --leftover) {
    ++out[remainders[j].second];
  }
  return out;
}

StatusOr<ShardedAmnesiaController> ShardedAmnesiaController::Make(
    const ShardedControllerOptions& options,
    const PolicyOptions& policy_options, ShardedTable* table,
    const GroundTruthOracle* oracle, EventSink* event_sink) {
  if (table == nullptr) {
    return Status::InvalidArgument("sharded controller needs a table");
  }
  if (options.backend != BackendKind::kMarkOnly &&
      options.backend != BackendKind::kDelete) {
    return Status::InvalidArgument(
        "sharded controller supports the shard-local mark-only and delete "
        "backends; cold/summary/index tiers are per-table");
  }
  if (options.payload_col >= table->num_columns()) {
    return Status::InvalidArgument("payload_col out of range");
  }

  ShardedAmnesiaController out(options, table);
  const uint32_t shards = table->num_shards();
  out.policies_.reserve(shards);
  out.rngs_.reserve(shards);
  out.controllers_.reserve(shards);
  for (uint32_t s = 0; s < shards; ++s) {
    AMNESIA_ASSIGN_OR_RETURN(std::unique_ptr<AmnesiaPolicy> policy,
                             CreatePolicy(policy_options, oracle));
    ControllerOptions copts;
    copts.mode = BudgetMode::kFixedTupleCount;
    // Placeholder; the splitter re-apportions before every pass.
    copts.dbsize_budget = options.dbsize_budget;
    copts.backend = options.backend;
    copts.payload_col = options.payload_col;
    copts.compact_every_n_rounds = options.compact_every_n_rounds;
    copts.scrub_on_delete = options.scrub_on_delete;
    AMNESIA_ASSIGN_OR_RETURN(
        AmnesiaController ctrl,
        AmnesiaController::Make(copts, policy.get(),
                                &table->mutable_shard(s).mutable_table()));
    if (event_sink != nullptr) ctrl.set_event_sink(event_sink, s);
    out.policies_.push_back(std::move(policy));
    out.rngs_.emplace_back(options.seed + s);
    out.controllers_.push_back(
        std::make_unique<AmnesiaController>(std::move(ctrl)));
  }
  return out;
}

uint64_t ShardedAmnesiaController::Overflow() const {
  const uint64_t active = table_->num_active();
  return active > options_.dbsize_budget ? active - options_.dbsize_budget
                                         : 0;
}

Status ShardedAmnesiaController::EnforceBudget(ThreadPool* pool) {
  obs::TraceScope trace("amnesia.sharded_forget_pass");
  const uint32_t shards = table_->num_shards();
  trace.Annotate("shards", shards);
  trace.Annotate("parallel", pool != nullptr && shards > 1 ? 1 : 0);
  // Every shard's sub-pass counts as a split, even zero-budget ones: the
  // metric tracks how the budget was apportioned, not how many shards had
  // work (each sub-pass also notes itself under amnesia.passes).
  obs::EngineMetrics::Get().amnesia_shard_passes->Inc(shards);
  std::vector<uint64_t> active(shards);
  for (uint32_t s = 0; s < shards; ++s) {
    const Table& shard = table_->shard(s).table();
    if (options_.engine == Engine::kVectorized) {
      // Recompute the live count morsel-at-a-time from the visibility
      // bitmap; matches the maintained counter bit for bit.
      uint64_t live = 0;
      for (Morsel m : shard.Morsels()) live += MorselLiveCount(shard, m);
      active[s] = live;
    } else {
      active[s] = shard.num_active();
    }
  }
  last_budgets_ = SplitBudget(options_.dbsize_budget, active);

  // Each pass touches only its shard's table, policy and rng, so the
  // passes commute: pool order and serial order produce identical state.
  std::vector<Status> results(shards);
  const auto run_shard = [&](uint32_t s) {
    controllers_[s]->set_dbsize_budget(last_budgets_[s]);
    results[s] = controllers_[s]->EnforceBudget(&rngs_[s]);
  };
  if (pool != nullptr && shards > 1) {
    pool->ParallelFor(0, shards, 1, [&](uint64_t lo, uint64_t hi) {
      for (uint64_t s = lo; s < hi; ++s) {
        run_shard(static_cast<uint32_t>(s));
      }
    });
  } else {
    for (uint32_t s = 0; s < shards; ++s) run_shard(s);
  }
  for (Status& status : results) {
    if (!status.ok()) return std::move(status);
  }
  return Status::OK();
}

StatusOr<uint64_t> ShardedAmnesiaController::VacuumExpired(
    uint32_t max_age_batches, ThreadPool* pool) {
  const uint32_t shards = table_->num_shards();
  std::vector<StatusOr<uint64_t>> results(shards, uint64_t{0});
  const auto run_shard = [&](uint32_t s) {
    results[s] = controllers_[s]->VacuumExpired(max_age_batches);
  };
  if (pool != nullptr && shards > 1) {
    pool->ParallelFor(0, shards, 1, [&](uint64_t lo, uint64_t hi) {
      for (uint64_t s = lo; s < hi; ++s) {
        run_shard(static_cast<uint32_t>(s));
      }
    });
  } else {
    for (uint32_t s = 0; s < shards; ++s) run_shard(s);
  }
  uint64_t total = 0;
  for (StatusOr<uint64_t>& result : results) {
    AMNESIA_ASSIGN_OR_RETURN(const uint64_t vacuumed, std::move(result));
    total += vacuumed;
  }
  return total;
}

void ShardedAmnesiaController::set_audit_ledger(AuditLedger* ledger,
                                                EventLogBase* lsn_source) {
  for (auto& ctrl : controllers_) {
    ctrl->set_audit_ledger(ledger, lsn_source);
  }
}

void ShardedAmnesiaController::set_sla_tracker(obs::SlaTracker* tracker) {
  for (auto& ctrl : controllers_) ctrl->set_sla_tracker(tracker);
}

uint64_t ShardedAmnesiaController::ForgetLag(uint32_t max_age_batches) const {
  uint64_t worst = 0;
  for (const auto& ctrl : controllers_) {
    worst = std::max(worst, ctrl->ForgetLag(max_age_batches));
  }
  return worst;
}

ControllerStats ShardedAmnesiaController::stats() const {
  ControllerStats total;
  for (const auto& ctrl : controllers_) {
    const ControllerStats& s = ctrl->stats();
    total.rounds = std::max(total.rounds, s.rounds);
    total.tuples_forgotten += s.tuples_forgotten;
    total.compactions += s.compactions;
    total.rows_compacted += s.rows_compacted;
    total.partitions_dropped += s.partitions_dropped;
    total.cold_evictions += s.cold_evictions;
    total.summary_folds += s.summary_folds;
    total.index_erases += s.index_erases;
  }
  return total;
}

}  // namespace amnesia
