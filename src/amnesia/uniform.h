// Copyright 2026 The AmnesiaDB Authors

#ifndef AMNESIA_AMNESIA_UNIFORM_H_
#define AMNESIA_AMNESIA_UNIFORM_H_

#include "amnesia/policy.h"

namespace amnesia {

/// \brief Reservoir-style random forgetting (§3.1 Uniform-amnesia).
///
/// Every active tuple has the same probability of being forgotten in any
/// round; older tuples have simply been candidates more often, producing
/// the exponential retention-by-age profile of Figure 1. "Serves as an
/// easy to understand baseline."
class UniformPolicy final : public AmnesiaPolicy {
 public:
  PolicyKind kind() const override { return PolicyKind::kUniform; }
  StatusOr<std::vector<RowId>> SelectVictims(const Table& table, size_t k,
                                             Rng* rng) override;
};

}  // namespace amnesia

#endif  // AMNESIA_AMNESIA_UNIFORM_H_
