// Copyright 2026 The AmnesiaDB Authors

#ifndef AMNESIA_AMNESIA_AREA_H_
#define AMNESIA_AMNESIA_AREA_H_

#include <vector>

#include "amnesia/policy.h"

namespace amnesia {

/// \brief Tuning for the area policy.
struct AreaOptions {
  /// Maximum number of concurrently growing mold areas (0 = unbounded).
  /// When the cap is reached, "seed new area" draws are redirected to
  /// extending a random existing area.
  size_t max_areas = 0;
};

/// \brief Spatially biased amnesia (§3.3, "area based").
///
/// Mimics mold/disk-rot: forgetting is biased toward regions of the
/// storage timeline that are already decaying. The policy keeps a list of
/// K forgotten areas (contiguous row ranges it created). For every victim
/// it draws n in 1..K+1: n = K+1 seeds a new area at a random active
/// tuple; otherwise area n is extended by one tuple to the left or right
/// (skipping rows forgotten by other means), falling back to the opposite
/// direction at the storage boundary and to seeding when the area is
/// landlocked.
class AreaPolicy final : public AmnesiaPolicy {
 public:
  explicit AreaPolicy(AreaOptions options = AreaOptions())
      : options_(options) {}

  PolicyKind kind() const override { return PolicyKind::kArea; }
  StatusOr<std::vector<RowId>> SelectVictims(const Table& table, size_t k,
                                             Rng* rng) override;

  /// Compaction physically removes all forgotten rows — and with them
  /// every mold area; the policy starts fresh mold on the survivors.
  void OnCompaction(const RowMapping& mapping) override;

  /// Returns the current number of mold areas (test/diagnostic hook).
  size_t num_areas() const { return areas_.size(); }

 private:
  struct Area {
    RowId lo;  ///< Inclusive first forgotten row of the area.
    RowId hi;  ///< Inclusive last forgotten row of the area.
  };

  AreaOptions options_;
  std::vector<Area> areas_;
};

}  // namespace amnesia

#endif  // AMNESIA_AMNESIA_AREA_H_
