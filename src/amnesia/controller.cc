// Copyright 2026 The AmnesiaDB Authors

#include "amnesia/controller.h"

#include <algorithm>
#include <cmath>

#include "obs/engine_metrics.h"
#include "obs/trace.h"

namespace amnesia {

std::string_view BackendKindToString(BackendKind kind) {
  switch (kind) {
    case BackendKind::kMarkOnly:
      return "mark-only";
    case BackendKind::kDelete:
      return "delete";
    case BackendKind::kColdStorage:
      return "cold-storage";
    case BackendKind::kSummary:
      return "summary";
    case BackendKind::kIndexSkip:
      return "index-skip";
  }
  return "unknown";
}

StatusOr<AmnesiaController> AmnesiaController::Make(
    const ControllerOptions& options, AmnesiaPolicy* policy, Table* table,
    IndexManager* indexes, ColdStore* cold, SummaryStore* summaries) {
  if (policy == nullptr || table == nullptr) {
    return Status::InvalidArgument("controller needs a policy and a table");
  }
  if (options.payload_col >= table->num_columns()) {
    return Status::InvalidArgument("payload_col out of range");
  }
  if (options.backend == BackendKind::kColdStorage && cold == nullptr) {
    return Status::InvalidArgument("cold-storage backend needs a ColdStore");
  }
  if (options.backend == BackendKind::kSummary && summaries == nullptr) {
    return Status::InvalidArgument("summary backend needs a SummaryStore");
  }
  if (options.backend == BackendKind::kIndexSkip && indexes == nullptr) {
    return Status::InvalidArgument("index-skip backend needs an IndexManager");
  }
  if (options.mode == BudgetMode::kByteHighWater &&
      (options.byte_low_water_fraction <= 0.0 ||
       options.byte_low_water_fraction > 1.0)) {
    return Status::InvalidArgument(
        "byte_low_water_fraction must be in (0, 1]");
  }
  return AmnesiaController(options, policy, table, indexes, cold, summaries);
}

uint64_t AmnesiaController::Overflow() const {
  switch (options_.mode) {
    case BudgetMode::kFixedTupleCount: {
      const uint64_t active = table_->num_active();
      return active > options_.dbsize_budget
                 ? active - options_.dbsize_budget
                 : 0;
    }
    case BudgetMode::kByteHighWater: {
      const size_t bytes = table_->ApproxBytes();
      if (bytes <= options_.byte_high_water) return 0;
      const double target = options_.byte_low_water_fraction *
                            static_cast<double>(options_.byte_high_water);
      const uint64_t rows = std::max<uint64_t>(1, table_->num_rows());
      const double bytes_per_row =
          static_cast<double>(bytes) / static_cast<double>(rows);
      const double excess = static_cast<double>(bytes) - target;
      const uint64_t tuples =
          static_cast<uint64_t>(std::ceil(excess / bytes_per_row));
      return std::min<uint64_t>(tuples, table_->num_active());
    }
  }
  return 0;
}

Status AmnesiaController::ForgetOne(RowId row) {
  // Capture metadata before the state flips.
  const Value value = table_->value(options_.payload_col, row);
  const BatchId batch = table_->batch_of(row);
  const Tick tick = table_->insert_tick(row);

  switch (options_.backend) {
    case BackendKind::kMarkOnly:
      AMNESIA_RETURN_NOT_OK(table_->Forget(row));
      break;
    case BackendKind::kDelete:
      AMNESIA_RETURN_NOT_OK(table_->Forget(row));
      break;
    case BackendKind::kColdStorage:
      cold_->Put(ColdTuple{row, value, tick, batch});
      AMNESIA_RETURN_NOT_OK(table_->Forget(row));
      ++stats_.cold_evictions;
      break;
    case BackendKind::kSummary:
      summaries_->AddForgotten(options_.payload_col, batch, value);
      AMNESIA_RETURN_NOT_OK(table_->Forget(row));
      ++stats_.summary_folds;
      break;
    case BackendKind::kIndexSkip: {
      AMNESIA_RETURN_NOT_OK(table_->Forget(row));
      AMNESIA_RETURN_NOT_OK(
          indexes_->ApplyForget(*table_, options_.payload_col, value, row));
      ++stats_.index_erases;
      break;
    }
  }
  if (event_sink_ != nullptr) {
    Event event;
    event.kind = EventKind::kForget;
    event.shard = event_shard_;
    event.row = row;
    event.backend = static_cast<uint8_t>(options_.backend);
    event.payload_col = static_cast<uint32_t>(options_.payload_col);
    AMNESIA_RETURN_NOT_OK(event_sink_->Append(event));
  }
  // The scrub is journaled after the forget event, matching the replay
  // order: Forget(row) must precede ScrubRow(row).
  if (options_.backend == BackendKind::kDelete && options_.scrub_on_delete) {
    if (event_sink_ != nullptr) {
      Event event;
      event.kind = EventKind::kScrub;
      event.shard = event_shard_;
      event.row = row;
      event.value = 0;
      AMNESIA_RETURN_NOT_OK(event_sink_->Append(event));
      // Scrubbing a sealed row of a mapped table overwrites mmap'd file
      // bytes, which survive a crash on their own. The journal must be
      // durable first (write-ahead), or a crash here recovers a row whose
      // payload is zeroed but whose metadata says it was never forgotten.
      if (table_->mapped() && row < table_->sealed_rows()) {
        AMNESIA_RETURN_NOT_OK(event_sink_->Flush());
      }
    }
    AMNESIA_RETURN_NOT_OK(table_->ScrubRow(row));
    obs::EngineMetrics::Get().amnesia_rows_scrubbed->Inc();
    ++audit_.rows_scrubbed;
  }
  ++audit_.rows_marked;
  audit_.tick_lo = std::min<uint64_t>(audit_.tick_lo, tick);
  audit_.tick_hi = std::max<uint64_t>(audit_.tick_hi, tick);
  ++stats_.tuples_forgotten;
  obs::EngineMetrics::Get().amnesia_rows_forgotten->Inc();
  return Status::OK();
}

Status AmnesiaController::RunCompaction() {
  const RowMapping mapping = table_->CompactForgotten();
  policy_->OnCompaction(mapping);
  ++stats_.compactions;
  stats_.rows_compacted += mapping.removed;
  obs::EngineMetrics::Get().amnesia_compactions->Inc();
  obs::EngineMetrics::Get().amnesia_rows_compacted->Inc(mapping.removed);
  if (event_sink_ != nullptr) {
    Event event;
    event.kind = EventKind::kCompact;
    event.shard = event_shard_;
    AMNESIA_RETURN_NOT_OK(event_sink_->Append(event));
  }
  return Status::OK();
}

uint64_t AmnesiaController::ForgetLag(uint32_t max_age_batches) const {
  const RowId oldest = table_->NthActiveRow(0);
  if (oldest == kInvalidRow) return 0;
  const BatchId current = table_->current_batch();
  const uint64_t age = current - table_->batch_of(oldest);
  return age > max_age_batches ? age - max_age_batches : 0;
}

Status AmnesiaController::FinishSweepAudit(AuditOp op) {
  if (audit_ledger_ == nullptr ||
      (audit_.rows_marked == 0 && audit_.partitions_dropped == 0)) {
    return Status::OK();
  }
  // Journal first, attest second: a crash between the two leaves the
  // sweep replayable but unattested — recovery's totals can exceed the
  // ledger's, never trail them.
  if (event_sink_ != nullptr) {
    AMNESIA_RETURN_NOT_OK(event_sink_->Flush());
  }
  AuditRecord record;
  record.op = op;
  record.policy = std::string(PolicyKindToString(policy_->kind()));
  record.backend = static_cast<uint8_t>(options_.backend);
  record.shard = event_shard_;
  record.rows_marked = audit_.rows_marked;
  record.rows_scrubbed = audit_.rows_scrubbed;
  record.partitions_dropped = audit_.partitions_dropped;
  record.tick_lo = audit_.tick_lo == UINT64_MAX ? 0 : audit_.tick_lo;
  record.tick_hi = audit_.tick_hi;
  record.batch = table_->current_batch();
  record.lsn = lsn_source_ != nullptr ? lsn_source_->next_lsn() : 0;
  record.lifetime_forgotten = table_->lifetime_forgotten();
  return audit_ledger_->Append(&record);
}

StatusOr<uint64_t> AmnesiaController::VacuumExpired(uint32_t max_age_batches) {
  const BatchId current = table_->current_batch();
  uint64_t vacuumed = 0;
  audit_ = SweepAudit{};

  // Partition fast path (mapped storage): batches are monotonic in row
  // order, so a sealed partition whose NEWEST row expired contains only
  // expired rows and drops whole — an fsync'd directory rename instead of
  // a per-row sweep, O(1) in the partition's size. Only backends that do
  // not preserve the payload qualify (cold/summary/index backends must
  // still visit every tuple). The drop is physical even under kMarkOnly:
  // mandatory vacuuming is the paper's privacy path, where the bytes must
  // actually go away.
  if (table_->mapped() && (options_.backend == BackendKind::kMarkOnly ||
                           options_.backend == BackendKind::kDelete)) {
    const uint64_t pr = table_->partition_rows();
    const auto& partitions = table_->partitions();
    for (size_t idx = 0; idx < partitions.size(); ++idx) {
      if (partitions[idx].dropped) continue;
      const RowId newest = static_cast<RowId>((idx + 1) * pr - 1);
      const BatchId b = table_->batch_of(newest);
      if (b + max_age_batches >= current) break;  // later ones are younger
      // Audit metadata must be read before the drop scrubs it away; the
      // tick range brackets the whole partition (ticks are monotonic in
      // row order).
      const uint64_t tick_lo = table_->insert_tick(
          static_cast<RowId>(idx * pr));
      const uint64_t tick_hi = table_->insert_tick(newest);
      // Rename first, then journal: a crash in between loses the event
      // but keeps the bytes (under the `.dropped` name), so recovery
      // restores the partition intact and the next vacuum re-drops it.
      // The unlink is deferred to checkpoint retention GC while older
      // manifests may still need the bytes for fallback recovery.
      AMNESIA_ASSIGN_OR_RETURN(
          const uint64_t newly,
          table_->DropPartition(idx, /*defer_unlink=*/event_sink_ != nullptr));
      if (event_sink_ != nullptr) {
        Event event;
        event.kind = EventKind::kDropPartition;
        event.shard = event_shard_;
        event.row = static_cast<RowId>(idx);
        event.value = static_cast<Value>(pr);
        AMNESIA_RETURN_NOT_OK(event_sink_->Append(event));
      }
      vacuumed += newly;
      stats_.tuples_forgotten += newly;
      ++stats_.partitions_dropped;
      obs::EngineMetrics::Get().amnesia_rows_forgotten->Inc(newly);
      audit_.rows_marked += newly;
      audit_.rows_scrubbed += newly;  // the drop physically removes bytes
      ++audit_.partitions_dropped;
      audit_.tick_lo = std::min(audit_.tick_lo, tick_lo);
      audit_.tick_hi = std::max(audit_.tick_hi, tick_hi);
      if (sla_ != nullptr && newly > 0) {
        // One latency sample per partition, dated by its NEWEST row: the
        // partition only became droppable when that row crossed the
        // deadline, so it bounds every row's deletion latency from below.
        sla_->RecordDeletionLatency(
            std::string(PolicyKindToString(policy_->kind())),
            current - b - max_age_batches);
      }
    }
  }

  std::vector<RowId> expired;
  const uint64_t n = table_->num_rows();
  for (RowId r = 0; r < n; ++r) {
    if (!table_->IsActive(r)) continue;
    const BatchId b = table_->batch_of(r);
    if (b + max_age_batches < current) {
      expired.push_back(r);
      if (sla_ != nullptr) {
        sla_->RecordDeletionLatency(
            std::string(PolicyKindToString(policy_->kind())),
            current - b - max_age_batches);
      }
    }
  }
  for (RowId r : expired) {
    AMNESIA_RETURN_NOT_OK(ForgetOne(r));
  }
  vacuumed += expired.size();
  if (options_.backend == BackendKind::kDelete && !expired.empty() &&
      options_.compact_every_n_rounds > 0 && !table_->mapped()) {
    AMNESIA_RETURN_NOT_OK(RunCompaction());
  }
  AMNESIA_RETURN_NOT_OK(FinishSweepAudit(AuditOp::kVacuum));
  if (sla_ != nullptr) {
    sla_->RecordSweep(std::string(PolicyKindToString(policy_->kind())),
                      ForgetLag(max_age_batches), current);
  }
  return vacuumed;
}

StatusOr<uint64_t> AmnesiaController::AdaptBudgetToProcessingCost(
    double avg_rows_examined_per_query, double max_avg_rows_per_query,
    double shrink_factor, Rng* rng) {
  if (options_.mode != BudgetMode::kFixedTupleCount) {
    return Status::FailedPrecondition(
        "processing-cost adaptation requires the fixed tuple-count mode");
  }
  if (shrink_factor <= 0.0 || shrink_factor >= 1.0) {
    return Status::InvalidArgument("shrink_factor must be in (0, 1)");
  }
  if (max_avg_rows_per_query <= 0.0) {
    return Status::InvalidArgument("max_avg_rows_per_query must be positive");
  }
  if (avg_rows_examined_per_query > max_avg_rows_per_query) {
    const uint64_t shrunk = std::max<uint64_t>(
        1, static_cast<uint64_t>(shrink_factor *
                                 static_cast<double>(options_.dbsize_budget)));
    options_.dbsize_budget = shrunk;
    AMNESIA_RETURN_NOT_OK(EnforceBudget(rng));
  }
  return options_.dbsize_budget;
}

Status AmnesiaController::EnforceBudget(Rng* rng) {
  obs::EngineMetrics& metrics = obs::EngineMetrics::Get();
  obs::TraceScope trace("amnesia.forget_pass", metrics.amnesia_pass_ns);
  metrics.amnesia_passes->Inc();
  ++stats_.rounds;
  audit_ = SweepAudit{};
  const uint64_t overflow = Overflow();
  trace.Annotate("overflow", static_cast<int64_t>(overflow));
  if (overflow > 0) {
    AMNESIA_ASSIGN_OR_RETURN(
        std::vector<RowId> victims,
        policy_->SelectVictims(*table_, overflow, rng));
    if (victims.size() < std::min<uint64_t>(overflow, table_->num_active())) {
      return Status::Internal("policy returned too few victims");
    }
    for (RowId row : victims) {
      AMNESIA_RETURN_NOT_OK(ForgetOne(row));
    }
  }

  // Mapped tables never move rows (RowIds are partition-file offsets), so
  // compaction is an identity no-op there — skip it rather than journal
  // events that redo nothing.
  if (options_.backend == BackendKind::kDelete &&
      options_.compact_every_n_rounds > 0 &&
      stats_.rounds % options_.compact_every_n_rounds == 0 &&
      table_->num_forgotten() > 0 && !table_->mapped()) {
    AMNESIA_RETURN_NOT_OK(RunCompaction());
  }
  // Rows still over budget after the pass: nonzero means the policy could
  // not produce enough victims (pinned rows, empty table) — the signal a
  // server would watch to decide the forget path is falling behind.
  const uint64_t overshoot = Overflow();
  if (overshoot > 0) metrics.amnesia_overshoot_rows->Inc(overshoot);
  trace.Annotate("overshoot", static_cast<int64_t>(overshoot));
  AMNESIA_RETURN_NOT_OK(FinishSweepAudit(AuditOp::kEnforce));
  return Status::OK();
}

}  // namespace amnesia
