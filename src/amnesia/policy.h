// Copyright 2026 The AmnesiaDB Authors
//
// The amnesia policy interface. A policy answers the paper's core question
// — "what to retain and for how long?" — by selecting, after every update
// batch, exactly the tuples that must be forgotten to keep the table at
// its storage budget (§3).

#ifndef AMNESIA_AMNESIA_POLICY_H_
#define AMNESIA_AMNESIA_POLICY_H_

#include <string_view>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "storage/table.h"
#include "storage/types.h"

namespace amnesia {

/// \brief The amnesia strategies studied in the paper plus its §4.4
/// extensions.
enum class PolicyKind : int {
  kFifo = 0,                ///< §3.1 sliding window over the timeline.
  kUniform = 1,             ///< §3.1 reservoir-style random forgetting.
  kAnterograde = 2,         ///< §3.1 forget the new, keep the old.
  kRot = 3,                 ///< §3.2 forget rarely-accessed, aged tuples.
  kInverseRot = 4,          ///< §3.2 forget over-consumed tuples.
  kArea = 5,                ///< §3.3 spatially correlated "mold" areas.
  kPairPreserving = 6,      ///< §4.4 forget mean-preserving pairs.
  kDistributionAligned = 7, ///< §4.4 keep active shape close to history.
};

/// \brief Returns a stable lowercase name ("fifo", "uniform", "ante",
/// "rot", "inverse-rot", "area", "pair", "aligned").
std::string_view PolicyKindToString(PolicyKind kind);

/// \brief Parses a policy name; inverse of PolicyKindToString.
StatusOr<PolicyKind> PolicyKindFromString(std::string_view name);

/// \brief Strategy that picks which active tuples to forget.
///
/// SelectVictims must return min(k, num_active) *distinct, active* rows.
/// Policies may keep internal state across rounds (the area policy's mold
/// list); OnCompaction tells them when physical row ids were invalidated.
class AmnesiaPolicy {
 public:
  virtual ~AmnesiaPolicy() = default;

  /// Returns the policy kind.
  virtual PolicyKind kind() const = 0;

  /// Selects min(k, table.num_active()) distinct active rows to forget.
  virtual StatusOr<std::vector<RowId>> SelectVictims(const Table& table,
                                                     size_t k, Rng* rng) = 0;

  /// Notifies the policy that the table was compacted and row ids were
  /// remapped per `mapping`. Default: no-op (stateless policies).
  virtual void OnCompaction(const RowMapping& mapping) { (void)mapping; }
};

}  // namespace amnesia

#endif  // AMNESIA_AMNESIA_POLICY_H_
