// Copyright 2026 The AmnesiaDB Authors

#include "amnesia/referential.h"

namespace amnesia {

bool ReferentialForgetter::ValueStillActiveElsewhere(const Table& table,
                                                     size_t col, Value value,
                                                     RowId excluding_row) {
  const uint64_t n = table.num_rows();
  for (RowId r = 0; r < n; ++r) {
    if (r == excluding_row) continue;
    if (table.IsActive(r) && table.value(col, r) == value) return true;
  }
  return false;
}

Status ReferentialForgetter::ForgetRecursive(
    const std::string& table_name, RowId row,
    ReferentialForgetResult* result) {
  AMNESIA_ASSIGN_OR_RETURN(Table * table, db_->GetTable(table_name));
  if (row >= table->num_rows()) {
    return Status::OutOfRange("row out of range in '" + table_name + "'");
  }
  if (!table->IsActive(row)) {
    return Status::OK();  // already forgotten (cycle or diamond in the graph)
  }

  // For every FK where this table is the parent, find the dependent child
  // rows — but only if this row carries the last active copy of the value.
  struct Dependent {
    std::string table;
    RowId row;
  };
  std::vector<Dependent> dependents;
  for (const ForeignKey& fk : db_->ForeignKeysReferencing(table_name)) {
    const Value key = table->value(fk.parent_col, row);
    if (ValueStillActiveElsewhere(*table, fk.parent_col, key, row)) {
      continue;  // the key value survives; children stay valid
    }
    AMNESIA_ASSIGN_OR_RETURN(Table * child, db_->GetTable(fk.child_table));
    const uint64_t cn = child->num_rows();
    for (RowId cr = 0; cr < cn; ++cr) {
      if (child->IsActive(cr) && child->value(fk.child_col, cr) == key) {
        if (action_ == ReferentialAction::kRestrict) {
          return Status::FailedPrecondition(
              "restrict: " + fk.child_table + "[" + std::to_string(cr) +
              "] still references " + table_name + " value " +
              std::to_string(key));
        }
        dependents.push_back(Dependent{fk.child_table, cr});
      }
    }
  }

  // Forget the row itself first so that cyclic FKs terminate, then the
  // dependents.
  AMNESIA_RETURN_NOT_OK(table->Forget(row));
  ++result->total;
  bool counted = false;
  for (auto& [name, count] : result->forgotten_per_table) {
    if (name == table_name) {
      ++count;
      counted = true;
      break;
    }
  }
  if (!counted) result->forgotten_per_table.emplace_back(table_name, 1);

  for (const Dependent& d : dependents) {
    AMNESIA_RETURN_NOT_OK(ForgetRecursive(d.table, d.row, result));
  }
  return Status::OK();
}

StatusOr<ReferentialForgetResult> ReferentialForgetter::Forget(
    const std::string& table, RowId row) {
  ReferentialForgetResult result;
  // Under restrict, nothing may be mutated when the operation fails; do a
  // dry-run pass first by checking the immediate constraint before any
  // Forget. ForgetRecursive under kRestrict fails before mutating (the
  // dependent scan precedes table->Forget), so a failure leaves the
  // database untouched for the root row. For cascade the operation is
  // all-or-nothing only per row; partial cascades cannot fail after the
  // root row is forgotten because children are forgotten unconditionally.
  AMNESIA_RETURN_NOT_OK(ForgetRecursive(table, row, &result));
  return result;
}

}  // namespace amnesia
