// Copyright 2026 The AmnesiaDB Authors
//
// Policy factory: one call site that knows how to construct every amnesia
// policy from a declarative options struct — what the simulator, benches
// and examples use.

#ifndef AMNESIA_AMNESIA_REGISTRY_H_
#define AMNESIA_AMNESIA_REGISTRY_H_

#include <memory>
#include <vector>

#include "amnesia/area.h"
#include "amnesia/policy.h"
#include "amnesia/pair_preserving.h"
#include "amnesia/rot.h"
#include "amnesia/distribution_aligned.h"
#include "query/oracle.h"

namespace amnesia {

/// \brief Union of the tuning knobs of all policies. Fields irrelevant to
/// the selected kind are ignored.
struct PolicyOptions {
  PolicyKind kind = PolicyKind::kUniform;
  /// Anterograde: recency-bias exponent.
  double ante_beta = 8.0;
  /// Rot: high-water mark and smoothing.
  RotOptions rot;
  /// Area: mold cap.
  AreaOptions area;
  /// Pair-preserving: column and tolerance.
  PairPreservingOptions pair;
  /// Distribution-aligned: column and bucket count.
  DistributionAlignedOptions aligned;
};

/// \brief Constructs a policy. `oracle` is only required for
/// kDistributionAligned (InvalidArgument when missing there); other kinds
/// ignore it.
StatusOr<std::unique_ptr<AmnesiaPolicy>> CreatePolicy(
    const PolicyOptions& options, const GroundTruthOracle* oracle = nullptr);

/// \brief Returns all policy kinds, in enum order (bench sweep helper).
std::vector<PolicyKind> AllPolicyKinds();

/// \brief Returns the five policies the paper's evaluation section plots
/// (fifo, uniform, ante, rot, area), in figure order.
std::vector<PolicyKind> PaperPolicyKinds();

}  // namespace amnesia

#endif  // AMNESIA_AMNESIA_REGISTRY_H_
