// Copyright 2026 The AmnesiaDB Authors

#include "amnesia/pair_preserving.h"

#include <algorithm>
#include <cmath>
#include <vector>

namespace amnesia {

StatusOr<std::vector<RowId>> PairPreservingPolicy::SelectVictims(
    const Table& table, size_t k, Rng* rng) {
  (void)rng;  // deterministic given the table state
  if (options_.col >= table.num_columns()) {
    return Status::InvalidArgument("pair policy column out of range");
  }
  if (options_.tolerance < 0.0) {
    return Status::InvalidArgument("tolerance must be non-negative");
  }

  struct Entry {
    Value value;
    RowId row;
  };
  std::vector<Entry> entries;
  entries.reserve(table.num_active());
  double sum = 0.0;
  table.active_bitmap().ForEachSet([&](size_t r) {
    const Value v = table.value(options_.col, r);
    entries.push_back(Entry{v, r});
    sum += static_cast<double>(v);
  });
  const size_t n = entries.size();
  const size_t want = std::min(k, n);
  std::vector<RowId> victims;
  victims.reserve(want);
  if (n == 0 || want == 0) return victims;

  std::sort(entries.begin(), entries.end(),
            [](const Entry& a, const Entry& b) { return a.value < b.value; });
  const double mean = sum / static_cast<double>(n);
  const double range = std::max(
      1.0, static_cast<double>(entries.back().value - entries.front().value));
  const double tol = options_.tolerance * range;

  std::vector<bool> taken(n, false);
  size_t i = 0;
  size_t j = n - 1;
  double pair_removed_sum = 0.0;
  while (victims.size() + 1 < want && i < j) {
    // Compensating target: if earlier pairs landed slightly off the ideal
    // 2*mean (tolerance permits that), aim the next pair so the cumulative
    // removed mean comes back to the active mean — without this the greedy
    // systematically drifts when outliers have no antipodal partner.
    const double removed = static_cast<double>(victims.size());
    const double pair_target = mean * (removed + 2.0) - pair_removed_sum;
    const double s = static_cast<double>(entries[i].value) +
                     static_cast<double>(entries[j].value);
    if (std::abs(s - pair_target) <= tol) {
      victims.push_back(entries[i].row);
      victims.push_back(entries[j].row);
      taken[i] = true;
      taken[j] = true;
      pair_removed_sum += s;
      ++i;
      --j;
    } else if (s < pair_target) {
      ++i;  // need a larger low-side value
    } else {
      --j;  // need a smaller high-side value
    }
  }

  if (victims.size() < want) {
    // Balanced fill: keep the *mean of everything forgotten this round*
    // as close to the active mean as possible, which preserves the
    // surviving mean even when no antipodal pairs exist (e.g. data with a
    // gap around the mean). Each step removes the untaken value closest
    // to the target `mean * (removed + 1) - removed_sum`.
    double removed_sum = 0.0;
    for (RowId r : victims) {
      // Recover the removed values' sum from the table.
      removed_sum += static_cast<double>(table.value(options_.col, r));
    }
    // Sorted pool of untaken (value, entry index).
    std::vector<size_t> pool;
    pool.reserve(n);
    for (size_t idx = 0; idx < n; ++idx) {
      if (!taken[idx]) pool.push_back(idx);  // entries are value-sorted
    }
    while (victims.size() < want && !pool.empty()) {
      const double removed = static_cast<double>(victims.size());
      const double needed = mean * (removed + 1.0) - removed_sum;
      // Binary search the sorted pool for the value closest to `needed`.
      const auto it = std::lower_bound(
          pool.begin(), pool.end(), needed, [&](size_t idx, double v) {
            return static_cast<double>(entries[idx].value) < v;
          });
      auto pick = it;
      if (pick == pool.end()) {
        pick = std::prev(pool.end());
      } else if (pick != pool.begin()) {
        const double above = static_cast<double>(entries[*pick].value);
        const double below =
            static_cast<double>(entries[*std::prev(pick)].value);
        if (needed - below < above - needed) pick = std::prev(pick);
      }
      removed_sum += static_cast<double>(entries[*pick].value);
      victims.push_back(entries[*pick].row);
      pool.erase(pick);
    }
  }
  return victims;
}

}  // namespace amnesia
