// Copyright 2026 The AmnesiaDB Authors
//
// Adaptive partitioned amnesia (§4.4): "it might be worth to study amnesia
// in the context of adaptive partitioning. Each partition can then be
// tuned to provide the best precision for a subset of the workload."
//
// The table's value domain is split into partitions; each partition gets
// its own tuple budget and its own forgetting discipline. Disciplines can
// be fixed per partition or — the knobless mode — re-derived every round
// from that partition's observed access pattern via the §2.2 advisor:
// recency-dominated partitions run FIFO, skew-dominated ones run rot,
// the rest run uniform.

#ifndef AMNESIA_AMNESIA_PARTITIONED_H_
#define AMNESIA_AMNESIA_PARTITIONED_H_

#include <cstdint>
#include <vector>

#include "amnesia/policy.h"
#include "common/rng.h"
#include "common/status.h"
#include "storage/table.h"

namespace amnesia {

/// \brief Per-partition forgetting disciplines supported by the
/// partitioned controller (a subset of the full policy zoo, selected
/// per-partition instead of globally).
enum class PartitionDiscipline : int {
  kFifo = 0,     ///< Oldest tuples of the partition go first.
  kUniform = 1,  ///< Random tuples of the partition.
  kRot = 2,      ///< Least-accessed tuples of the partition.
  kAuto = 3,     ///< Re-derived from the partition's access profile.
};

/// \brief Returns a stable name for a discipline.
std::string_view PartitionDisciplineToString(PartitionDiscipline d);

/// \brief Configuration of one value-range partition.
struct PartitionSpec {
  Value lo = 0;  ///< Inclusive lower value bound.
  Value hi = 0;  ///< Exclusive upper value bound.
  uint64_t budget = 0;  ///< Max active tuples in the partition.
  PartitionDiscipline discipline = PartitionDiscipline::kAuto;
};

/// \brief Live statistics of one partition.
struct PartitionStats {
  uint64_t active = 0;
  uint64_t forgotten_total = 0;
  uint64_t accesses = 0;          ///< Sum of access counts of active rows.
  double mean_access_age = 0.0;   ///< Mean (now - tick) of accessed rows.
  PartitionDiscipline effective = PartitionDiscipline::kUniform;
};

/// \brief Enforces per-partition budgets with per-partition disciplines.
class PartitionedAmnesia {
 public:
  /// Validates the partition list: non-empty, each with lo < hi and a
  /// positive budget. Ranges may leave gaps (uncovered tuples are never
  /// forgotten by this controller) but must not overlap.
  static StatusOr<PartitionedAmnesia> Make(std::vector<PartitionSpec> specs,
                                           size_t col = 0);

  /// Forgets (mark-only) until every partition is within its budget.
  /// Returns the number of tuples forgotten.
  StatusOr<uint64_t> EnforceBudgets(Table* table, Rng* rng);

  /// Returns current statistics per partition (same order as the specs).
  std::vector<PartitionStats> Stats(const Table& table) const;

  /// Returns the partition index for a value, or npos when uncovered.
  size_t PartitionOf(Value v) const;

  /// Returns the specs.
  const std::vector<PartitionSpec>& specs() const { return specs_; }

  static constexpr size_t npos = static_cast<size_t>(-1);

 private:
  PartitionedAmnesia(std::vector<PartitionSpec> specs, size_t col)
      : specs_(std::move(specs)), col_(col) {}

  /// Decides the effective discipline for partition `p` given the access
  /// profile of its active rows.
  PartitionDiscipline Resolve(const Table& table,
                              const std::vector<RowId>& members,
                              PartitionDiscipline configured) const;

  std::vector<PartitionSpec> specs_;
  size_t col_;
  std::vector<uint64_t> forgotten_per_partition_;
};

}  // namespace amnesia

#endif  // AMNESIA_AMNESIA_PARTITIONED_H_
