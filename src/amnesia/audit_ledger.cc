// Copyright 2026 The AmnesiaDB Authors

#include "amnesia/audit_ledger.h"

#include <dirent.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstring>
#include <utility>

#include "durability/checkpointer.h"  // EnsureDir
#include "durability/frame_io.h"
#include "storage/checkpoint_io.h"

namespace amnesia {

namespace {

constexpr uint32_t kLedgerMagic = 0x44454C41;  // "ALED"
constexpr uint32_t kLedgerFormatVersion = 1;
// magic + version + base seq + chain seed + CRC over the first 20 bytes.
constexpr size_t kLedgerHeaderSize = 4 + 4 + 8 + 4 + 4;
constexpr const char* kSegmentPrefix = "audit-";
constexpr const char* kSegmentSuffix = ".seg";

std::string SegmentName(uint64_t base_seq) {
  return kSegmentPrefix + std::to_string(base_seq) + kSegmentSuffix;
}

bool IsSegmentName(const std::string& name) {
  return name.rfind(kSegmentPrefix, 0) == 0 &&
         name.size() >
             std::strlen(kSegmentPrefix) + std::strlen(kSegmentSuffix) &&
         name.rfind(kSegmentSuffix) == name.size() -
                                           std::strlen(kSegmentSuffix);
}

std::vector<uint8_t> EncodeLedgerHeader(uint64_t base_seq,
                                        uint32_t chain_seed) {
  std::vector<uint8_t> out;
  ckpt::Writer w(&out);
  w.U32(kLedgerMagic);
  w.U32(kLedgerFormatVersion);
  w.U64(base_seq);
  w.U32(chain_seed);
  w.U32(ckpt::Crc32(out));
  return out;
}

bool ReadLedgerHeader(std::FILE* f, uint64_t* base_seq,
                      uint32_t* chain_seed) {
  std::vector<uint8_t> header(kLedgerHeaderSize);
  if (std::fread(header.data(), 1, header.size(), f) != header.size()) {
    return false;
  }
  uint32_t stored_crc = 0;
  std::memcpy(&stored_crc, header.data() + 20, sizeof(stored_crc));
  if (ckpt::Crc32(header.data(), 20) != stored_crc) return false;
  uint32_t magic = 0, version = 0;
  std::memcpy(&magic, header.data(), sizeof(magic));
  std::memcpy(&version, header.data() + 4, sizeof(version));
  if (magic != kLedgerMagic || version != kLedgerFormatVersion) return false;
  std::memcpy(base_seq, header.data() + 8, sizeof(*base_seq));
  std::memcpy(chain_seed, header.data() + 16, sizeof(*chain_seed));
  return true;
}

bool ListSegmentNames(const std::string& dir, std::vector<std::string>* out) {
  DIR* d = opendir(dir.c_str());
  if (d == nullptr) return false;
  while (dirent* entry = readdir(d)) {
    if (IsSegmentName(entry->d_name)) out->push_back(entry->d_name);
  }
  closedir(d);
  return true;
}

/// One ledger segment file, scanned front to back.
struct ScannedSegment {
  uint64_t base = 0;        ///< Seq of the first record.
  uint32_t chain_seed = 0;  ///< Frame CRC of the previous segment's tail.
  uint64_t count = 0;       ///< CRC-valid frames decoded.
  uint64_t valid_bytes = 0; ///< Header + valid frames; a tear starts here.
  std::string path;
};

/// Everything a directory scan learns about a ledger.
struct LedgerScan {
  /// The contiguous chained segments, oldest first; records across the
  /// chain decoded in order (records[i] has seq chain[0].base + i).
  std::vector<ScannedSegment> chain;
  std::vector<AuditRecord> records;
  /// Frame CRC of the newest decoded record (chain[0].chain_seed when the
  /// chain holds no records at all).
  uint32_t chain_crc = 0;
  /// First chain break with CRC-valid bytes on both sides — tampering or
  /// a splice, never a torn tail. Empty when the chain is clean.
  std::string break_detail;
  /// Segment files that are not part of the chain (unreadable header, or
  /// past a break). OpenForAppend unlinks them; readers ignore them.
  std::vector<std::string> orphans;
};

/// Scans one segment file; returns false when the header is unreadable.
/// Frames are decoded until the first invalid one (torn tail).
bool ScanSegment(const std::string& path, ScannedSegment* seg,
                 std::vector<AuditRecord>* records) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return false;
  if (!ReadLedgerHeader(f, &seg->base, &seg->chain_seed)) {
    std::fclose(f);
    return false;
  }
  seg->path = path;
  seg->valid_bytes = kLedgerHeaderSize;
  std::vector<uint8_t> payload;
  while (wal::ReadFrame(f, &payload)) {
    AuditRecord record;
    if (!DecodeAuditRecord(payload, &record).ok()) break;
    records->push_back(std::move(record));
    ++seg->count;
    seg->valid_bytes += wal::kFrameHeaderSize + payload.size();
  }
  std::fclose(f);
  return true;
}

/// Scans `dir` and assembles the contiguous chain, oldest segment first.
/// Contiguity means seq continuity AND chain-seed continuity; a segment
/// violating either ends the chain (later segments become orphans). The
/// seeds are re-verified record-by-record so `break_detail` pinpoints a
/// CRC-valid record whose prev_crc disagrees with its predecessor.
Status ScanLedger(const std::string& dir, LedgerScan* scan) {
  std::vector<std::string> names;
  if (!ListSegmentNames(dir, &names)) {
    return Status::NotFound("no audit ledger at '" + dir + "'");
  }
  std::vector<ScannedSegment> segments;
  for (const std::string& name : names) {
    const std::string path = dir + "/" + name;
    ScannedSegment seg;
    std::vector<AuditRecord> ignored;
    if (ScanSegment(path, &seg, &ignored)) {
      segments.push_back(std::move(seg));
    } else {
      scan->orphans.push_back(path);
    }
  }
  if (segments.empty() && scan->orphans.empty()) {
    return Status::NotFound("no audit ledger at '" + dir + "'");
  }
  std::sort(segments.begin(), segments.end(),
            [](const ScannedSegment& a, const ScannedSegment& b) {
              return a.base < b.base;
            });
  // Adopt the oldest segment's seed as the chain start (retention GC may
  // have unlinked everything before it), then extend while contiguous.
  uint32_t chain = 0;
  uint64_t next_seq = 0;
  bool first = true;
  for (ScannedSegment& seg : segments) {
    if (!first && (seg.base != next_seq || seg.chain_seed != chain)) {
      scan->orphans.push_back(seg.path);
      continue;
    }
    if (!scan->break_detail.empty()) {  // chain already broken: orphan rest
      scan->orphans.push_back(seg.path);
      continue;
    }
    if (first) {
      chain = seg.chain_seed;
      next_seq = seg.base;
      first = false;
    }
    ScannedSegment rescanned;
    std::vector<AuditRecord> records;
    if (!ScanSegment(seg.path, &rescanned, &records)) {
      scan->orphans.push_back(seg.path);
      continue;
    }
    // Walk the records against the running chain; a mismatch on a
    // CRC-valid record is a genuine break, not a torn tail. valid_bytes
    // is rewound to the adopted prefix so OpenForAppend never resumes
    // past a break (encoding is deterministic, so the re-encoded frame
    // size equals the on-disk one).
    uint64_t adopted = 0;
    uint64_t adopted_bytes = kLedgerHeaderSize;
    for (AuditRecord& record : records) {
      const std::vector<uint8_t> payload = EncodeAuditRecord(record);
      if (record.prev_crc != chain || record.seq != next_seq) {
        scan->break_detail =
            "record seq " + std::to_string(record.seq) + " in '" +
            rescanned.path + "' breaks the chain (expected seq " +
            std::to_string(next_seq) + ", prev_crc " + std::to_string(chain) +
            "; found prev_crc " + std::to_string(record.prev_crc) + ")";
        break;
      }
      chain = ckpt::Crc32(payload);
      ++next_seq;
      ++adopted;
      adopted_bytes += wal::kFrameHeaderSize + payload.size();
      scan->records.push_back(std::move(record));
    }
    rescanned.count = adopted;
    rescanned.valid_bytes = adopted_bytes;
    scan->chain.push_back(std::move(rescanned));
  }
  scan->chain_crc = chain;
  return Status::OK();
}

}  // namespace

std::string_view AuditOpToString(AuditOp op) {
  switch (op) {
    case AuditOp::kEnforce:
      return "enforce";
    case AuditOp::kVacuum:
      return "vacuum";
  }
  return "unknown";
}

std::vector<uint8_t> EncodeAuditRecord(const AuditRecord& record) {
  std::vector<uint8_t> out;
  ckpt::Writer w(&out);
  w.U64(record.seq);
  w.U32(record.prev_crc);
  w.U8(static_cast<uint8_t>(record.op));
  w.String(record.policy);
  w.U8(record.backend);
  w.U32(record.shard);
  w.U64(record.rows_marked);
  w.U64(record.rows_scrubbed);
  w.U64(record.partitions_dropped);
  w.U64(record.tick_lo);
  w.U64(record.tick_hi);
  w.U64(record.batch);
  w.U64(record.lsn);
  w.U64(record.wall_ms);
  w.U64(record.lifetime_forgotten);
  return out;
}

Status DecodeAuditRecord(const std::vector<uint8_t>& payload,
                         AuditRecord* record) {
  ckpt::Reader r(payload);
  uint8_t op = 0;
  AMNESIA_RETURN_NOT_OK(r.U64(&record->seq));
  AMNESIA_RETURN_NOT_OK(r.U32(&record->prev_crc));
  AMNESIA_RETURN_NOT_OK(r.U8(&op));
  AMNESIA_RETURN_NOT_OK(r.String(&record->policy));
  AMNESIA_RETURN_NOT_OK(r.U8(&record->backend));
  AMNESIA_RETURN_NOT_OK(r.U32(&record->shard));
  AMNESIA_RETURN_NOT_OK(r.U64(&record->rows_marked));
  AMNESIA_RETURN_NOT_OK(r.U64(&record->rows_scrubbed));
  AMNESIA_RETURN_NOT_OK(r.U64(&record->partitions_dropped));
  AMNESIA_RETURN_NOT_OK(r.U64(&record->tick_lo));
  AMNESIA_RETURN_NOT_OK(r.U64(&record->tick_hi));
  AMNESIA_RETURN_NOT_OK(r.U64(&record->batch));
  AMNESIA_RETURN_NOT_OK(r.U64(&record->lsn));
  AMNESIA_RETURN_NOT_OK(r.U64(&record->wall_ms));
  AMNESIA_RETURN_NOT_OK(r.U64(&record->lifetime_forgotten));
  if (op != static_cast<uint8_t>(AuditOp::kEnforce) &&
      op != static_cast<uint8_t>(AuditOp::kVacuum)) {
    return Status::InvalidArgument("unknown audit op " + std::to_string(op));
  }
  if (!r.AtEnd()) {
    return Status::InvalidArgument("trailing bytes in audit record");
  }
  record->op = static_cast<AuditOp>(op);
  return Status::OK();
}

StatusOr<AuditLedger> AuditLedger::Open(const std::string& dir,
                                        const AuditLedgerOptions& options) {
  AMNESIA_RETURN_NOT_OK(EnsureDir(dir));
  std::vector<std::string> names;
  ListSegmentNames(dir, &names);
  for (const std::string& name : names) {
    const std::string path = dir + "/" + name;
    if (std::remove(path.c_str()) != 0) {
      return Status::Internal("cannot remove stale ledger segment '" + path +
                              "'");
    }
  }
  AuditLedger ledger;
  ledger.dir_ = dir;
  ledger.options_ = options;
  ledger.active_base_ = 0;
  ledger.active_path_ = dir + "/" + SegmentName(0);
  ledger.active_ = std::fopen(ledger.active_path_.c_str(), "wb");
  if (ledger.active_ == nullptr) {
    return Status::Internal("cannot create ledger segment '" +
                            ledger.active_path_ + "'");
  }
  const std::vector<uint8_t> header = EncodeLedgerHeader(0, 0);
  if (std::fwrite(header.data(), 1, header.size(), ledger.active_) !=
          header.size() ||
      std::fflush(ledger.active_) != 0) {
    return Status::Internal("cannot write ledger header in '" +
                            ledger.active_path_ + "'");
  }
  ledger.active_bytes_ = header.size();
  return ledger;
}

StatusOr<AuditLedger> AuditLedger::OpenForAppend(
    const std::string& dir, const AuditLedgerOptions& options) {
  AMNESIA_RETURN_NOT_OK(EnsureDir(dir));
  LedgerScan scan;
  const Status scanned = ScanLedger(dir, &scan);
  if (scanned.code() == StatusCode::kNotFound) return Open(dir, options);
  AMNESIA_RETURN_NOT_OK(scanned);
  if (scan.chain.empty()) {
    // Only orphans survived (e.g. a half-written header). Start over.
    for (const std::string& path : scan.orphans) std::remove(path.c_str());
    return Open(dir, options);
  }
  // Unlink orphans so a later TruncateBefore never trips over them.
  for (const std::string& path : scan.orphans) std::remove(path.c_str());
  // Physically truncate the newest segment's torn tail before appending.
  ScannedSegment& newest = scan.chain.back();
  struct stat st;
  if (stat(newest.path.c_str(), &st) == 0 &&
      static_cast<uint64_t>(st.st_size) > newest.valid_bytes) {
    if (truncate(newest.path.c_str(),
                 static_cast<off_t>(newest.valid_bytes)) != 0) {
      return Status::Internal("cannot truncate torn ledger tail in '" +
                              newest.path + "'");
    }
  }
  AuditLedger ledger;
  ledger.dir_ = dir;
  ledger.options_ = options;
  ledger.chain_crc_ = scan.chain_crc;
  for (size_t i = 0; i + 1 < scan.chain.size(); ++i) {
    ledger.sealed_.push_back(Sealed{scan.chain[i].base, scan.chain[i].count,
                                    scan.chain[i].path});
  }
  ledger.active_base_ = newest.base;
  ledger.active_count_ = newest.count;
  ledger.active_bytes_ = newest.valid_bytes;
  ledger.active_path_ = newest.path;
  ledger.active_ = std::fopen(newest.path.c_str(), "ab");
  if (ledger.active_ == nullptr) {
    return Status::Internal("cannot reopen ledger segment '" + newest.path +
                            "'");
  }
  const size_t keep = std::min(scan.records.size(), options.tail_capacity);
  for (size_t i = scan.records.size() - keep; i < scan.records.size(); ++i) {
    ledger.tail_.push_back(std::move(scan.records[i]));
  }
  return ledger;
}

AuditLedger::~AuditLedger() { Close(); }

void AuditLedger::Close() {
  if (active_ != nullptr) {
    std::fflush(active_);
    std::fclose(active_);
    active_ = nullptr;
  }
}

AuditLedger::AuditLedger(AuditLedger&& other) noexcept {
  *this = std::move(other);
}

AuditLedger& AuditLedger::operator=(AuditLedger&& other) noexcept {
  if (this == &other) return *this;
  Close();
  std::lock_guard<std::mutex> lock(other.mu_);
  dir_ = std::move(other.dir_);
  options_ = other.options_;
  sealed_ = std::move(other.sealed_);
  tail_ = std::move(other.tail_);
  active_base_ = other.active_base_;
  active_count_ = other.active_count_;
  active_bytes_ = other.active_bytes_;
  chain_crc_ = other.chain_crc_;
  active_path_ = std::move(other.active_path_);
  active_ = other.active_;
  unlinked_total_ = other.unlinked_total_;
  other.active_ = nullptr;
  return *this;
}

Status AuditLedger::RollLocked() {
  // Seal: fsync the finished segment so its chain position is durable,
  // then start a fresh one seeded with the current chain head.
  if (std::fflush(active_) != 0 || fsync(fileno(active_)) != 0) {
    return Status::Internal("cannot seal ledger segment '" + active_path_ +
                            "'");
  }
  std::fclose(active_);
  active_ = nullptr;
  sealed_.push_back(Sealed{active_base_, active_count_, active_path_});
  const uint64_t base = active_base_ + active_count_;
  active_base_ = base;
  active_count_ = 0;
  active_path_ = dir_ + "/" + SegmentName(base);
  active_ = std::fopen(active_path_.c_str(), "wb");
  if (active_ == nullptr) {
    return Status::Internal("cannot create ledger segment '" + active_path_ +
                            "'");
  }
  const std::vector<uint8_t> header = EncodeLedgerHeader(base, chain_crc_);
  if (std::fwrite(header.data(), 1, header.size(), active_) !=
          header.size() ||
      std::fflush(active_) != 0) {
    return Status::Internal("cannot write ledger header in '" + active_path_ +
                            "'");
  }
  active_bytes_ = header.size();
  return Status::OK();
}

Status AuditLedger::Append(AuditRecord* record) {
  std::lock_guard<std::mutex> lock(mu_);
  if (active_ == nullptr) {
    return Status::FailedPrecondition("audit ledger is closed");
  }
  record->seq = active_base_ + active_count_;
  record->prev_crc = chain_crc_;
  if (record->wall_ms == 0) {
    record->wall_ms = static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::milliseconds>(
            std::chrono::system_clock::now().time_since_epoch())
            .count());
  }
  const std::vector<uint8_t> payload = EncodeAuditRecord(*record);
  if (active_bytes_ + wal::kFrameHeaderSize + payload.size() >
          options_.max_segment_bytes &&
      active_count_ > 0) {
    AMNESIA_RETURN_NOT_OK(RollLocked());
    record->seq = active_base_;  // unchanged, but keep the invariant clear
  }
  AMNESIA_RETURN_NOT_OK(wal::WriteFrame(active_, payload, active_path_));
  if (std::fflush(active_) != 0) {
    return Status::Internal("cannot flush ledger segment '" + active_path_ +
                            "'");
  }
  active_bytes_ += wal::kFrameHeaderSize + payload.size();
  ++active_count_;
  chain_crc_ = ckpt::Crc32(payload);
  tail_.push_back(*record);
  while (tail_.size() > options_.tail_capacity) tail_.pop_front();
  return Status::OK();
}

std::vector<AuditRecord> AuditLedger::Tail(size_t n) const {
  std::lock_guard<std::mutex> lock(mu_);
  const size_t keep = std::min(n, tail_.size());
  return std::vector<AuditRecord>(tail_.end() - keep, tail_.end());
}

Status AuditLedger::TruncateBefore(uint64_t seq) {
  std::lock_guard<std::mutex> lock(mu_);
  if (seq > active_base_ + active_count_) {
    return Status::InvalidArgument(
        "cannot truncate audit ledger beyond next_seq");
  }
  while (!sealed_.empty() &&
         sealed_.front().base + sealed_.front().count <= seq) {
    const std::string path = sealed_.front().path;
    if (std::remove(path.c_str()) != 0) {
      return Status::Internal("cannot unlink ledger segment '" + path + "'");
    }
    sealed_.pop_front();
    ++unlinked_total_;
  }
  return Status::OK();
}

uint64_t AuditLedger::next_seq() const {
  std::lock_guard<std::mutex> lock(mu_);
  return active_base_ + active_count_;
}

uint64_t AuditLedger::base_seq() const {
  std::lock_guard<std::mutex> lock(mu_);
  return sealed_.empty() ? active_base_ : sealed_.front().base;
}

uint32_t AuditLedger::chain_crc() const {
  std::lock_guard<std::mutex> lock(mu_);
  return chain_crc_;
}

uint64_t AuditLedger::segments_unlinked() const {
  std::lock_guard<std::mutex> lock(mu_);
  return unlinked_total_;
}

StatusOr<std::vector<AuditRecord>> ReadAuditRecords(const std::string& dir) {
  LedgerScan scan;
  AMNESIA_RETURN_NOT_OK(ScanLedger(dir, &scan));
  return std::move(scan.records);
}

StatusOr<AuditChainReport> VerifyAuditChain(const std::string& dir) {
  LedgerScan scan;
  AMNESIA_RETURN_NOT_OK(ScanLedger(dir, &scan));
  AuditChainReport report;
  report.records = scan.records.size();
  report.base_seq = scan.chain.empty() ? 0 : scan.chain.front().base;
  report.next_seq =
      scan.records.empty() ? report.base_seq : scan.records.back().seq + 1;
  report.chain_crc = scan.chain_crc;
  report.ok = scan.break_detail.empty();
  report.detail = scan.break_detail;
  return report;
}

std::string AuditDirFor(const std::string& checkpoint_dir) {
  return checkpoint_dir + "/audit.segs";
}

}  // namespace amnesia
