// Copyright 2026 The AmnesiaDB Authors
//
// Live introspection server: a tiny dependency-free HTTP/1.1 endpoint
// bound to 127.0.0.1 that exposes the observability layer while the
// engine runs. Endpoints:
//
//   /            index (plain-text endpoint table)
//   /metrics     Prometheus text exposition v0.0.4 of every registered
//                metric; ?format=json serves MetricsRegistry::DumpJson()
//   /healthz     liveness: 200 "ok" while the process serves
//   /readyz      readiness: runs the registered HealthProbes; 503 with
//                the failing probe's status when any is not ready
//   /tracez      the TraceLog ring as Chrome trace-event JSON — save it
//                and load in ui.perfetto.dev or chrome://tracing
//   /profilez    recent QueryProfiles (EXPLAIN-ANALYZE text; ?format=json
//                for machines, ?id=N for one query)
//   /auditz      the amnesia audit ledger's tail plus an on-disk hash-
//                chain verification (?n=K tail size, ?format=json)
//   /slaz        per-policy deletion-SLA state: forget lag, deletion
//                latency histogram, and the attestation block — only
//                rendered as asserted after a real CountRange scan
//                cross-checked it (?format=json)
//   /quitz       sets quit_requested() — lets CI tell a lingering demo
//                to exit without signals
//
// The server is deliberately minimal: blocking POSIX sockets, one accept
// thread that serves connections serially (introspection traffic is a
// scrape every few seconds; serial handling keeps lifetime management
// trivial and bounds resource use), Connection: close on every response,
// receive/send timeouts so a stalled client cannot wedge the loop.
//
// The render helpers (SanitizeMetricName, EscapeLabelValue,
// RenderPrometheus, RenderTraceJson) and the Handle() dispatcher are pure
// functions of their inputs, so tests exercise exposition without opening
// sockets. Under AMNESIA_NO_METRICS the server still compiles and runs —
// the registry, trace ring and profile log are no-op stubs, so every
// endpoint just serves empty data.

#ifndef AMNESIA_SERVER_INTROSPECT_H_
#define AMNESIA_SERVER_INTROSPECT_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "common/status.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace amnesia {

class AuditLedger;

namespace obs {
class SlaTracker;
}  // namespace obs

namespace server {

/// \brief Named readiness probe: returns OK when the subsystem is ready
/// to serve (checkpointer caught up, event log flushing, ...). Probes run
/// on the serving thread per /readyz request and must be non-blocking.
struct HealthProbe {
  std::string name;
  std::function<Status()> check;
};

/// \brief Server configuration.
struct IntrospectionOptions {
  /// TCP port to bind on 127.0.0.1. 0 picks an ephemeral port; the bound
  /// port is reported by IntrospectionServer::port() after Start().
  uint16_t port = 0;
  /// Probes consulted by /readyz (all must pass for 200).
  std::vector<HealthProbe> readiness_probes;
  /// Ledger served by /auditz (borrowed, must outlive the server;
  /// nullptr => /auditz answers 404).
  AuditLedger* audit_ledger = nullptr;
  /// Tracker served by /slaz (borrowed; nullptr => /slaz answers 404).
  obs::SlaTracker* sla = nullptr;
};

/// \brief One rendered HTTP response (also the return type of the
/// socket-free Handle() dispatcher and of FetchLocal()).
struct HttpResponse {
  int status = 200;
  std::string content_type = "text/plain; charset=utf-8";
  std::string body;
};

/// \name Pure exposition helpers (exposed for tests and benches).
/// @{

/// Maps a dotted metric name onto the Prometheus name charset
/// [a-zA-Z0-9_:]: every other byte becomes '_', and a leading digit gains
/// a '_' prefix. "scan.rows_scanned" -> "scan_rows_scanned".
std::string SanitizeMetricName(const std::string& name);

/// Escapes a Prometheus label value: backslash, double quote and newline
/// per the text exposition format spec.
std::string EscapeLabelValue(const std::string& value);

/// Renders a snapshot as Prometheus text exposition v0.0.4. Counters and
/// gauges are emitted under "amnesia_<sanitized>"; each gauge also emits
/// an "_high_water" companion series; histograms emit the conventional
/// cumulative "_bucket{le=...}" series (inclusive integer upper bounds,
/// closed by le="+Inf") plus "_sum" and "_count".
std::string RenderPrometheus(const obs::MetricsSnapshot& snapshot);

/// Renders trace spans as Chrome trace-event JSON (complete "X" events,
/// microsecond ts/dur, annotations as args). The hashed thread ids are
/// remapped to small integers in first-seen order so tids survive the
/// JSON double round-trip. Loadable in ui.perfetto.dev.
std::string RenderTraceJson(const std::vector<obs::TraceSpan>& spans);

/// @}

/// \brief The introspection HTTP server. Start() binds and spawns the
/// accept thread; Stop() (or the destructor) shuts it down and joins.
class IntrospectionServer {
 public:
  IntrospectionServer() = default;
  ~IntrospectionServer();

  IntrospectionServer(const IntrospectionServer&) = delete;
  IntrospectionServer& operator=(const IntrospectionServer&) = delete;

  /// Binds 127.0.0.1:options.port and starts serving. Fails if already
  /// running or the port is taken.
  Status Start(IntrospectionOptions options);

  /// Stops accepting, joins the serving thread, closes the socket.
  /// Idempotent.
  void Stop();

  bool running() const { return running_.load(std::memory_order_acquire); }

  /// The bound port (the ephemeral pick when options.port was 0); 0 when
  /// not running.
  uint16_t port() const { return port_; }

  /// True once a client hit /quitz — the "you may exit now" signal for
  /// demos lingering in a serve loop.
  bool quit_requested() const {
    return quit_requested_.load(std::memory_order_acquire);
  }

  /// Dispatches one request without a socket (the unit-test entry point;
  /// the socket path funnels into this). `params` is the parsed query
  /// string.
  HttpResponse Handle(const std::string& path,
                      const std::map<std::string, std::string>& params);

  /// Parses "path?k=v&..." and dispatches to Handle().
  HttpResponse HandleTarget(const std::string& target);

 private:
  void AcceptLoop();
  void ServeConnection(int fd);

  IntrospectionOptions options_;
  int listen_fd_ = -1;
  uint16_t port_ = 0;
  std::atomic<bool> running_{false};
  std::atomic<bool> quit_requested_{false};
  std::thread accept_thread_;
};

/// \brief Blocking HTTP GET against 127.0.0.1:`port`. Returns the parsed
/// status / content type / body, or a non-OK Status on connect/transport
/// failure. Used by tests, the CI smoke job and the scrape-latency bench.
StatusOr<HttpResponse> FetchLocal(uint16_t port, const std::string& target);

}  // namespace server
}  // namespace amnesia

#endif  // AMNESIA_SERVER_INTROSPECT_H_
