// Copyright 2026 The AmnesiaDB Authors

#include "server/introspect.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <utility>

#include "amnesia/audit_ledger.h"
#include "obs/sla.h"
#include "query/profile.h"

namespace amnesia {
namespace server {

namespace {

// printf-append; exposition rendering is snprintf all the way down so the
// output format is auditable in one place.
__attribute__((format(printf, 2, 3))) void AppendFmt(std::string* out,
                                                     const char* fmt, ...) {
  char buf[256];
  va_list args;
  va_start(args, fmt);
  const int n = vsnprintf(buf, sizeof(buf), fmt, args);
  va_end(args);
  if (n > 0) out->append(buf, static_cast<size_t>(n) < sizeof(buf)
                                  ? static_cast<size_t>(n)
                                  : sizeof(buf) - 1);
}

void AppendJsonString(std::string* out, const char* s) {
  out->push_back('"');
  for (; *s != '\0'; ++s) {
    const char c = *s;
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      case '\n':
        *out += "\\n";
        break;
      case '\t':
        *out += "\\t";
        break;
      case '\r':
        *out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          AppendFmt(out, "\\u%04x", c);
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

// One exposition family header. `orig` keeps the dotted registry name
// visible to operators grepping HELP text.
void AppendFamilyHeader(std::string* out, const std::string& name,
                        const std::string& orig, const char* type) {
  AppendFmt(out, "# HELP %s AmnesiaDB metric \"%s\".\n", name.c_str(),
            orig.c_str());
  AppendFmt(out, "# TYPE %s %s\n", name.c_str(), type);
}

}  // namespace

std::string SanitizeMetricName(const std::string& name) {
  std::string out;
  out.reserve(name.size() + 1);
  for (char c : name) {
    const bool valid = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                       (c >= '0' && c <= '9') || c == '_' || c == ':';
    out.push_back(valid ? c : '_');
  }
  if (!out.empty() && out[0] >= '0' && out[0] <= '9') out.insert(0, 1, '_');
  return out;
}

std::string EscapeLabelValue(const std::string& value) {
  std::string out;
  out.reserve(value.size());
  for (char c : value) {
    switch (c) {
      case '\\':
        out += "\\\\";
        break;
      case '"':
        out += "\\\"";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out.push_back(c);
    }
  }
  return out;
}

std::string RenderPrometheus(const obs::MetricsSnapshot& snapshot) {
  std::string out;
  out.reserve(4096);
  for (const auto& [name, value] : snapshot.counters) {
    const std::string san = "amnesia_" + SanitizeMetricName(name);
    AppendFamilyHeader(&out, san, name, "counter");
    AppendFmt(&out, "%s %llu\n", san.c_str(),
              static_cast<unsigned long long>(value));
  }
  for (const auto& [name, gauge] : snapshot.gauges) {
    const std::string san = "amnesia_" + SanitizeMetricName(name);
    AppendFamilyHeader(&out, san, name, "gauge");
    AppendFmt(&out, "%s %lld\n", san.c_str(),
              static_cast<long long>(gauge.value));
    const std::string hw = san + "_high_water";
    AppendFamilyHeader(&out, hw, name + " (high water)", "gauge");
    AppendFmt(&out, "%s %lld\n", hw.c_str(),
              static_cast<long long>(gauge.high_water));
  }
  for (const auto& [name, hist] : snapshot.histograms) {
    const std::string san = "amnesia_" + SanitizeMetricName(name);
    AppendFamilyHeader(&out, san, name, "histogram");
    // Buckets hold integer samples, so the inclusive upper bound of
    // bucket b >= 1 (covering [2^(b-1), 2^b)) is 2^b - 1. Emit up to the
    // highest populated bucket, then close with the mandatory +Inf.
    size_t last = 0;
    for (size_t b = 0; b < hist.buckets.size(); ++b) {
      if (hist.buckets[b] != 0) last = b;
    }
    uint64_t cumulative = 0;
    for (size_t b = 0; b <= last && b + 1 < hist.buckets.size(); ++b) {
      cumulative += hist.buckets[b];
      const uint64_t le = b == 0 ? 0 : (uint64_t{1} << b) - 1;
      AppendFmt(&out, "%s_bucket{le=\"%llu\"} %llu\n", san.c_str(),
                static_cast<unsigned long long>(le),
                static_cast<unsigned long long>(cumulative));
    }
    AppendFmt(&out, "%s_bucket{le=\"+Inf\"} %llu\n", san.c_str(),
              static_cast<unsigned long long>(hist.count));
    AppendFmt(&out, "%s_sum %llu\n", san.c_str(),
              static_cast<unsigned long long>(hist.sum));
    AppendFmt(&out, "%s_count %llu\n", san.c_str(),
              static_cast<unsigned long long>(hist.count));
  }
  return out;
}

std::string RenderTraceJson(const std::vector<obs::TraceSpan>& spans) {
  std::string out = "{\"traceEvents\":[";
  // Hashed thread ids do not survive a JSON double round-trip (53-bit
  // mantissa); remap them to small integers in first-seen order.
  std::map<uint64_t, int> tids;
  bool first = true;
  for (const obs::TraceSpan& span : spans) {
    if (span.name == nullptr) continue;
    const auto [it, inserted] =
        tids.emplace(span.thread_id, static_cast<int>(tids.size()) + 1);
    if (!first) out.push_back(',');
    first = false;
    out += "{\"name\":";
    AppendJsonString(&out, span.name);
    AppendFmt(&out,
              ",\"cat\":\"amnesia\",\"ph\":\"X\",\"pid\":1,\"tid\":%d,"
              "\"ts\":%.3f,\"dur\":%.3f",
              it->second, static_cast<double>(span.start_ns) / 1000.0,
              static_cast<double>(span.duration_ns) / 1000.0);
    if (span.num_annotations > 0) {
      out += ",\"args\":{";
      for (int a = 0; a < span.num_annotations; ++a) {
        if (a > 0) out.push_back(',');
        AppendJsonString(&out, span.annotations[a].key);
        AppendFmt(&out, ":%lld",
                  static_cast<long long>(span.annotations[a].value));
      }
      out.push_back('}');
    }
    out.push_back('}');
  }
  // Wall-clock anchor: span timestamps are steady-clock ns since process
  // start, which Perfetto renders fine but cannot align with log or audit-
  // ledger timestamps on its own. Publish the steady->realtime offset so
  // `wall ms = wallClockAnchorMs + ts/1000` converts any span timestamp.
  const double steady_ms = static_cast<double>(obs::NowNs()) / 1e6;
  const double wall_ms =
      static_cast<double>(
          std::chrono::duration_cast<std::chrono::microseconds>(
              std::chrono::system_clock::now().time_since_epoch())
              .count()) /
      1000.0;
  out += "],\"otherData\":{";
  AppendFmt(&out, "\"wallClockAnchorMs\":\"%.3f\",", wall_ms - steady_ms);
  out += "\"anchorNote\":\"wall-clock ms at trace ts 0; "
         "wall ms of a span = wallClockAnchorMs + ts/1000\"}}";
  return out;
}

namespace {

constexpr const char kIndexBody[] =
    "AmnesiaDB introspection server\n"
    "\n"
    "  /metrics    Prometheus text exposition (?format=json for JSON)\n"
    "  /healthz    liveness probe\n"
    "  /readyz     readiness probes (503 until all subsystems ready)\n"
    "  /tracez     recent spans as Chrome trace-event JSON (Perfetto)\n"
    "  /profilez   recent query profiles (?id=N, ?format=json)\n"
    "  /auditz     forget audit ledger tail + chain check (?n=K, ?format=json)\n"
    "  /slaz       per-policy deletion-SLA lag/latency + attestation "
    "(?format=json)\n"
    "  /quitz      ask the hosting process to exit its serve loop\n";

HttpResponse TextResponse(int status, std::string body) {
  HttpResponse resp;
  resp.status = status;
  resp.body = std::move(body);
  return resp;
}

HttpResponse JsonResponse(std::string body) {
  HttpResponse resp;
  resp.content_type = "application/json; charset=utf-8";
  resp.body = std::move(body);
  return resp;
}

HttpResponse HandleProfilez(const std::map<std::string, std::string>& params) {
  ProfileLog& log = ProfileLog::Global();
  const bool json = [&] {
    auto it = params.find("format");
    return it != params.end() && it->second == "json";
  }();
  if (auto it = params.find("id"); it != params.end()) {
    const uint64_t id = strtoull(it->second.c_str(), nullptr, 10);
    std::optional<QueryProfile> profile = log.Find(id);
    if (!profile.has_value()) {
      return TextResponse(404, "profile " + it->second +
                                   " not retained (ring holds the last " +
                                   std::to_string(ProfileLog::kCapacity) +
                                   ")\n");
    }
    return json ? JsonResponse(profile->ToJson())
                : TextResponse(200, profile->ToText());
  }
  std::vector<QueryProfile> profiles = log.Snapshot();
  if (json) {
    std::string out = "{\"profiles\":[";
    for (size_t i = 0; i < profiles.size(); ++i) {
      if (i > 0) out.push_back(',');
      profiles[i].AppendJson(&out);
    }
    out += "]}";
    return JsonResponse(std::move(out));
  }
  if (profiles.empty()) {
    return TextResponse(
        200, "no profiles recorded (run a query with ExecOptions::profile)\n");
  }
  std::string out;
  // Newest first: the profile an operator wants is almost always the one
  // they just ran.
  for (auto it = profiles.rbegin(); it != profiles.rend(); ++it) {
    out += it->ToText();
    out.push_back('\n');
  }
  return TextResponse(200, std::move(out));
}

bool WantsJson(const std::map<std::string, std::string>& params) {
  const auto it = params.find("format");
  return it != params.end() && it->second == "json";
}

void AppendAuditRecordJson(std::string* out, const AuditRecord& r) {
  AppendFmt(out,
            "{\"seq\":%llu,\"prev_crc\":%lu,\"op\":\"%s\",",
            static_cast<unsigned long long>(r.seq),
            static_cast<unsigned long>(r.prev_crc),
            std::string(AuditOpToString(r.op)).c_str());
  *out += "\"policy\":";
  AppendJsonString(out, r.policy.c_str());
  AppendFmt(out,
            ",\"backend\":%u,\"shard\":%lu,\"rows_marked\":%llu,"
            "\"rows_scrubbed\":%llu,\"partitions_dropped\":%llu,"
            "\"tick_lo\":%llu,\"tick_hi\":%llu,\"batch\":%llu,"
            "\"lsn\":%llu,\"wall_ms\":%llu,\"lifetime_forgotten\":%llu}",
            r.backend, static_cast<unsigned long>(r.shard),
            static_cast<unsigned long long>(r.rows_marked),
            static_cast<unsigned long long>(r.rows_scrubbed),
            static_cast<unsigned long long>(r.partitions_dropped),
            static_cast<unsigned long long>(r.tick_lo),
            static_cast<unsigned long long>(r.tick_hi),
            static_cast<unsigned long long>(r.batch),
            static_cast<unsigned long long>(r.lsn),
            static_cast<unsigned long long>(r.wall_ms),
            static_cast<unsigned long long>(r.lifetime_forgotten));
}

HttpResponse HandleAuditz(AuditLedger* ledger,
                          const std::map<std::string, std::string>& params) {
  if (ledger == nullptr) {
    return TextResponse(404, "no audit ledger attached\n");
  }
  size_t n = 20;
  if (const auto it = params.find("n"); it != params.end()) {
    n = static_cast<size_t>(strtoull(it->second.c_str(), nullptr, 10));
  }
  // The chain check re-reads the ledger from disk — it verifies what a
  // compliance audit would actually receive, not this process's memory.
  AuditChainReport chain;
  const StatusOr<AuditChainReport> verified = VerifyAuditChain(ledger->dir());
  if (verified.ok()) {
    chain = verified.value();
  } else {
    chain.ok = false;
    chain.detail = verified.status().ToString();
  }
  const std::vector<AuditRecord> tail = ledger->Tail(n);
  if (WantsJson(params)) {
    std::string out = "{\"dir\":";
    AppendJsonString(&out, ledger->dir().c_str());
    AppendFmt(&out,
              ",\"chain\":{\"ok\":%s,\"records\":%llu,\"base_seq\":%llu,"
              "\"next_seq\":%llu,\"head_crc\":%lu,\"detail\":",
              chain.ok ? "true" : "false",
              static_cast<unsigned long long>(chain.records),
              static_cast<unsigned long long>(chain.base_seq),
              static_cast<unsigned long long>(chain.next_seq),
              static_cast<unsigned long>(chain.chain_crc));
    AppendJsonString(&out, chain.detail.c_str());
    out += "},\"tail\":[";
    for (size_t i = 0; i < tail.size(); ++i) {
      if (i > 0) out.push_back(',');
      AppendAuditRecordJson(&out, tail[i]);
    }
    out += "]}";
    return JsonResponse(std::move(out));
  }
  std::string out = "amnesia audit ledger: " + ledger->dir() + "\n";
  if (chain.ok) {
    AppendFmt(&out,
              "chain: OK (%llu records, seq [%llu, %llu), head crc32 "
              "0x%08lx)\n",
              static_cast<unsigned long long>(chain.records),
              static_cast<unsigned long long>(chain.base_seq),
              static_cast<unsigned long long>(chain.next_seq),
              static_cast<unsigned long>(chain.chain_crc));
  } else {
    out += "chain: BROKEN — " + chain.detail + "\n";
  }
  AppendFmt(&out, "tail (%zu newest):\n", tail.size());
  for (const AuditRecord& r : tail) {
    AppendFmt(&out,
              "  #%llu %s policy=%s backend=%u shard=%lu rows=%llu "
              "scrubbed=%llu parts=%llu ticks=[%llu,%llu] batch=%llu "
              "lsn=%llu wall_ms=%llu lifetime=%llu\n",
              static_cast<unsigned long long>(r.seq),
              std::string(AuditOpToString(r.op)).c_str(), r.policy.c_str(),
              r.backend, static_cast<unsigned long>(r.shard),
              static_cast<unsigned long long>(r.rows_marked),
              static_cast<unsigned long long>(r.rows_scrubbed),
              static_cast<unsigned long long>(r.partitions_dropped),
              static_cast<unsigned long long>(r.tick_lo),
              static_cast<unsigned long long>(r.tick_hi),
              static_cast<unsigned long long>(r.batch),
              static_cast<unsigned long long>(r.lsn),
              static_cast<unsigned long long>(r.wall_ms),
              static_cast<unsigned long long>(r.lifetime_forgotten));
  }
  return TextResponse(200, std::move(out));
}

HttpResponse HandleSlaz(obs::SlaTracker* sla,
                        const std::map<std::string, std::string>& params) {
  if (sla == nullptr) {
    return TextResponse(404, "no deletion-SLA tracker attached\n");
  }
  const std::vector<obs::SlaPolicySnapshot> policies = sla->Snapshot();
  if (WantsJson(params)) {
    std::string out = "{\"policies\":[";
    for (size_t i = 0; i < policies.size(); ++i) {
      const obs::SlaPolicySnapshot& p = policies[i];
      if (i > 0) out.push_back(',');
      out += "{\"policy\":";
      AppendJsonString(&out, p.policy.c_str());
      AppendFmt(&out,
                ",\"sweeps\":%llu,\"last_batch\":%llu,"
                "\"forget_lag_batches\":%llu,\"max_lag_batches\":%llu,"
                "\"deletion_latency\":{\"count\":%llu,\"mean\":%.3f,"
                "\"p50\":%.1f,\"p99\":%.1f},",
                static_cast<unsigned long long>(p.sweeps),
                static_cast<unsigned long long>(p.last_batch),
                static_cast<unsigned long long>(p.forget_lag_batches),
                static_cast<unsigned long long>(p.max_lag_batches),
                static_cast<unsigned long long>(p.deletion_latency.count),
                p.deletion_latency.Mean(), p.deletion_latency.Quantile(0.5),
                p.deletion_latency.Quantile(0.99));
      const obs::SlaAttestation& a = p.attestation;
      AppendFmt(&out,
                "\"attestation\":{\"checked\":%s,\"passed\":%s,"
                "\"batch\":%llu,\"max_age_batches\":%llu,"
                "\"live_rows\":%llu,\"overdue_rows\":%llu}}",
                a.checked ? "true" : "false", a.passed ? "true" : "false",
                static_cast<unsigned long long>(a.batch),
                static_cast<unsigned long long>(a.max_age_batches),
                static_cast<unsigned long long>(a.live_rows),
                static_cast<unsigned long long>(a.overdue_rows));
    }
    out += "]}";
    return JsonResponse(std::move(out));
  }
  if (policies.empty()) {
    return TextResponse(200, "deletion SLA: no policies sampled yet\n");
  }
  std::string out = "deletion SLA\n";
  for (const obs::SlaPolicySnapshot& p : policies) {
    AppendFmt(&out, "policy %s:\n", p.policy.c_str());
    AppendFmt(&out, "  sweeps %llu, last batch %llu\n",
              static_cast<unsigned long long>(p.sweeps),
              static_cast<unsigned long long>(p.last_batch));
    AppendFmt(&out, "  forget lag: %llu batches (max ever %llu)\n",
              static_cast<unsigned long long>(p.forget_lag_batches),
              static_cast<unsigned long long>(p.max_lag_batches));
    AppendFmt(&out,
              "  deletion latency (batches past deadline): count %llu, "
              "mean %.2f, p50 %.1f, p99 %.1f\n",
              static_cast<unsigned long long>(p.deletion_latency.count),
              p.deletion_latency.Mean(), p.deletion_latency.Quantile(0.5),
              p.deletion_latency.Quantile(0.99));
    const obs::SlaAttestation& a = p.attestation;
    if (!a.checked) {
      out += "  attestation: not yet cross-checked\n";
    } else if (a.passed) {
      // Only rendered as an assertion because a real CountRange scan over
      // the live rows verified it — never inferred from counters.
      AppendFmt(&out,
                "  attestation: PASSED at batch %llu — no live row older "
                "than %llu batches (CountRange cross-check: %llu live rows, "
                "0 overdue)\n",
                static_cast<unsigned long long>(a.batch),
                static_cast<unsigned long long>(a.max_age_batches),
                static_cast<unsigned long long>(a.live_rows));
    } else {
      AppendFmt(&out,
                "  attestation: FAILED at batch %llu — %llu live rows older "
                "than %llu batches\n",
                static_cast<unsigned long long>(a.batch),
                static_cast<unsigned long long>(a.overdue_rows),
                static_cast<unsigned long long>(a.max_age_batches));
    }
  }
  return TextResponse(200, std::move(out));
}

}  // namespace

IntrospectionServer::~IntrospectionServer() { Stop(); }

HttpResponse IntrospectionServer::Handle(
    const std::string& path, const std::map<std::string, std::string>& params) {
  if (path == "/" || path == "/index") {
    return TextResponse(200, kIndexBody);
  }
  if (path == "/metrics") {
    const auto it = params.find("format");
    if (it != params.end() && it->second == "json") {
      return JsonResponse(obs::MetricsRegistry::Global().DumpJson());
    }
    HttpResponse resp;
    resp.content_type = "text/plain; version=0.0.4; charset=utf-8";
    resp.body = RenderPrometheus(obs::MetricsRegistry::Global().SnapshotAll());
    return resp;
  }
  if (path == "/healthz") {
    return TextResponse(200, "ok\n");
  }
  if (path == "/readyz") {
    std::string body;
    bool ready = true;
    for (const HealthProbe& probe : options_.readiness_probes) {
      const Status st = probe.check ? probe.check() : Status::OK();
      if (st.ok()) {
        body += probe.name + ": ok\n";
      } else {
        ready = false;
        body += probe.name + ": " + st.ToString() + "\n";
      }
    }
    if (body.empty()) body = "ok (no probes registered)\n";
    return TextResponse(ready ? 200 : 503, std::move(body));
  }
  if (path == "/tracez") {
    return JsonResponse(RenderTraceJson(obs::TraceLog::Global().Snapshot()));
  }
  if (path == "/profilez") {
    return HandleProfilez(params);
  }
  if (path == "/auditz") {
    return HandleAuditz(options_.audit_ledger, params);
  }
  if (path == "/slaz") {
    return HandleSlaz(options_.sla, params);
  }
  if (path == "/quitz") {
    quit_requested_.store(true, std::memory_order_release);
    return TextResponse(200, "bye\n");
  }
  return TextResponse(404, "no such endpoint: " + path + "\n" + kIndexBody);
}

HttpResponse IntrospectionServer::HandleTarget(const std::string& target) {
  std::string path = target;
  std::map<std::string, std::string> params;
  if (const size_t q = target.find('?'); q != std::string::npos) {
    path = target.substr(0, q);
    std::string rest = target.substr(q + 1);
    size_t pos = 0;
    while (pos < rest.size()) {
      size_t amp = rest.find('&', pos);
      if (amp == std::string::npos) amp = rest.size();
      const std::string pair = rest.substr(pos, amp - pos);
      const size_t eq = pair.find('=');
      if (eq != std::string::npos) {
        params[pair.substr(0, eq)] = pair.substr(eq + 1);
      } else if (!pair.empty()) {
        params[pair] = "";
      }
      pos = amp + 1;
    }
  }
  return Handle(path, params);
}

Status IntrospectionServer::Start(IntrospectionOptions options) {
  if (running()) {
    return Status::FailedPrecondition("introspection server already running");
  }
  options_ = std::move(options);
  listen_fd_ = socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    return Status::Internal(std::string("socket: ") + strerror(errno));
  }
  const int one = 1;
  setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(options_.port);
  if (bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
           sizeof(addr)) != 0) {
    const std::string err = strerror(errno);
    close(listen_fd_);
    listen_fd_ = -1;
    return Status::Internal("bind 127.0.0.1:" +
                            std::to_string(options_.port) + ": " + err);
  }
  if (listen(listen_fd_, 16) != 0) {
    const std::string err = strerror(errno);
    close(listen_fd_);
    listen_fd_ = -1;
    return Status::Internal("listen: " + err);
  }
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &len) !=
      0) {
    const std::string err = strerror(errno);
    close(listen_fd_);
    listen_fd_ = -1;
    return Status::Internal("getsockname: " + err);
  }
  port_ = ntohs(bound.sin_port);
  running_.store(true, std::memory_order_release);
  accept_thread_ = std::thread(&IntrospectionServer::AcceptLoop, this);
  return Status::OK();
}

void IntrospectionServer::Stop() {
  if (!running_.exchange(false, std::memory_order_acq_rel)) return;
  // shutdown() (not just close) wakes the blocked accept() so the loop
  // observes running_ == false and exits.
  shutdown(listen_fd_, SHUT_RDWR);
  if (accept_thread_.joinable()) accept_thread_.join();
  close(listen_fd_);
  listen_fd_ = -1;
  port_ = 0;
}

void IntrospectionServer::AcceptLoop() {
  while (running()) {
    const int fd = accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (!running() || errno == EINVAL || errno == EBADF) break;
      continue;  // EINTR / transient
    }
    // A stalled client must not wedge the serve loop.
    timeval timeout{};
    timeout.tv_sec = 2;
    setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &timeout, sizeof(timeout));
    setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &timeout, sizeof(timeout));
    ServeConnection(fd);
    close(fd);
  }
}

void IntrospectionServer::ServeConnection(int fd) {
  // Read until the end of the request head (the server ignores bodies).
  std::string request;
  char buf[1024];
  while (request.find("\r\n\r\n") == std::string::npos &&
         request.size() < 8192) {
    // A signal mid-recv (SIGCHLD from a demo's child, a profiler timer)
    // must not kill the scrape: retry on EINTR, give up on real errors.
    ssize_t n;
    do {
      n = recv(fd, buf, sizeof(buf), 0);
    } while (n < 0 && errno == EINTR);
    if (n <= 0) return;
    request.append(buf, static_cast<size_t>(n));
  }
  const size_t line_end = request.find("\r\n");
  if (line_end == std::string::npos) return;
  const std::string line = request.substr(0, line_end);
  HttpResponse resp;
  const size_t sp1 = line.find(' ');
  const size_t sp2 = sp1 == std::string::npos ? std::string::npos
                                              : line.find(' ', sp1 + 1);
  if (sp1 == std::string::npos || sp2 == std::string::npos) {
    resp = TextResponse(400, "malformed request line\n");
  } else if (line.substr(0, sp1) != "GET") {
    resp = TextResponse(405, "only GET is served here\n");
  } else {
    resp = HandleTarget(line.substr(sp1 + 1, sp2 - sp1 - 1));
  }
  const char* reason = resp.status == 200   ? "OK"
                       : resp.status == 400 ? "Bad Request"
                       : resp.status == 404 ? "Not Found"
                       : resp.status == 405 ? "Method Not Allowed"
                       : resp.status == 503 ? "Service Unavailable"
                                            : "Error";
  std::string out;
  out.reserve(resp.body.size() + 160);
  AppendFmt(&out, "HTTP/1.1 %d %s\r\n", resp.status, reason);
  AppendFmt(&out, "Content-Type: %s\r\n", resp.content_type.c_str());
  AppendFmt(&out, "Content-Length: %zu\r\n", resp.body.size());
  out += "Connection: close\r\n\r\n";
  out += resp.body;
  size_t sent = 0;
  while (sent < out.size()) {
    ssize_t n;
    do {
      n = send(fd, out.data() + sent, out.size() - sent, MSG_NOSIGNAL);
    } while (n < 0 && errno == EINTR);
    if (n <= 0) return;
    sent += static_cast<size_t>(n);
  }
}

StatusOr<HttpResponse> FetchLocal(uint16_t port, const std::string& target) {
  const int fd = socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::Internal(std::string("socket: ") + strerror(errno));
  }
  timeval timeout{};
  timeout.tv_sec = 5;
  setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &timeout, sizeof(timeout));
  setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &timeout, sizeof(timeout));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    const std::string err = strerror(errno);
    close(fd);
    return Status::Internal("connect 127.0.0.1:" + std::to_string(port) +
                            ": " + err);
  }
  const std::string request = "GET " + target +
                              " HTTP/1.1\r\nHost: 127.0.0.1\r\n"
                              "Connection: close\r\n\r\n";
  size_t sent = 0;
  while (sent < request.size()) {
    ssize_t n;
    do {
      n = send(fd, request.data() + sent, request.size() - sent,
               MSG_NOSIGNAL);
    } while (n < 0 && errno == EINTR);
    if (n <= 0) {
      close(fd);
      return Status::Internal("send failed");
    }
    sent += static_cast<size_t>(n);
  }
  std::string raw;
  char buf[4096];
  for (;;) {
    ssize_t n;
    do {
      n = recv(fd, buf, sizeof(buf), 0);
    } while (n < 0 && errno == EINTR);
    if (n < 0) {
      close(fd);
      return Status::Internal(std::string("recv: ") + strerror(errno));
    }
    if (n == 0) break;
    raw.append(buf, static_cast<size_t>(n));
  }
  close(fd);
  const size_t head_end = raw.find("\r\n\r\n");
  if (head_end == std::string::npos) {
    return Status::Internal("truncated HTTP response");
  }
  HttpResponse resp;
  resp.body = raw.substr(head_end + 4);
  const size_t sp = raw.find(' ');
  if (sp == std::string::npos || sp + 1 >= raw.size()) {
    return Status::Internal("malformed HTTP status line");
  }
  resp.status = atoi(raw.c_str() + sp + 1);
  const std::string head = raw.substr(0, head_end);
  if (const size_t ct = head.find("Content-Type: "); ct != std::string::npos) {
    const size_t eol = head.find("\r\n", ct);
    const size_t start = ct + strlen("Content-Type: ");
    resp.content_type = head.substr(
        start, (eol == std::string::npos ? head.size() : eol) - start);
  }
  return resp;
}

}  // namespace server
}  // namespace amnesia
