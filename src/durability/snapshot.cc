// Copyright 2026 The AmnesiaDB Authors

#include "durability/snapshot.h"

#include <utility>

#include "storage/checkpoint_io.h"

namespace amnesia {

namespace {

// Mirrors the constants in storage/checkpoint.cc: snapshot blobs are
// CheckpointTable blobs. Version 2 is the mapped-shard layout (partition
// metadata + unsealed tail; sealed payload stays in the partition files).
constexpr uint32_t kTableMagic = 0x414D4E45;  // "AMNE"
constexpr uint32_t kFormatVersion = 1;
constexpr uint32_t kFormatVersionMapped = 2;

/// Copies rows [begin, end) of `table` into a fresh chunk.
std::shared_ptr<const SnapshotChunk> CopyChunk(const Table& table,
                                               RowId begin, RowId end) {
  auto chunk = std::make_shared<SnapshotChunk>();
  const size_t cols = table.num_columns();
  const size_t rows = static_cast<size_t>(end - begin);
  chunk->columns.resize(cols);
  for (size_t c = 0; c < cols; ++c) {
    chunk->columns[c].resize(rows);
    table.column(c).CopyRange(begin, end, chunk->columns[c].data());
  }
  chunk->ticks.reserve(rows);
  chunk->batches.reserve(rows);
  for (RowId r = begin; r < end; ++r) {
    chunk->ticks.push_back(table.insert_tick(r));
    chunk->batches.push_back(table.batch_of(r));
  }
  return chunk;
}

/// Serializes a mapped shard in the v2 blob layout (decoded by
/// RestoreTableWithStorage). The sealed payload never enters the blob —
/// recovery re-maps the partition files — so blob size and restore time
/// scale with the tail plus flat metadata, not with history. Ticks are
/// omitted entirely: mapped shards never compact, so row r's tick is
/// always next_tick - num_rows + r.
std::vector<uint8_t> SerializeMappedSnapshot(const ShardSnapshot& snapshot) {
  std::vector<uint8_t> out;
  ckpt::Writer w(&out);
  w.U32(kTableMagic);
  w.U32(kFormatVersionMapped);

  const size_t cols = snapshot.schema.num_columns();
  w.U64(cols);
  for (size_t c = 0; c < cols; ++c) {
    const ColumnDef& def = snapshot.schema.column(c);
    w.String(def.name);
    w.I64(def.domain_lo);
    w.I64(def.domain_hi);
  }

  w.U64(snapshot.num_rows);
  w.U64(snapshot.next_tick);
  w.U64(snapshot.lifetime_forgotten);
  w.U32(snapshot.current_batch);

  w.U64(snapshot.partition_rows);
  w.U64(snapshot.partitions.size());
  for (const PartitionMeta& p : snapshot.partitions) {
    w.U64(p.epoch_lo);
    w.U64(p.epoch_hi);
    w.U8(p.dropped ? 1 : 0);
  }

  for (size_t c = 0; c < cols; ++c) {
    w.I64(snapshot.min_seen[c]);
    w.I64(snapshot.max_seen[c]);
    w.I64Array(snapshot.tail_columns[c]);
  }

  // Batches are monotonic per row, so run-length encoding collapses them
  // to one entry per update batch.
  std::vector<std::pair<BatchId, uint64_t>> batch_runs;
  for (const BatchId b : snapshot.batches) {
    if (batch_runs.empty() || batch_runs.back().first != b) {
      batch_runs.emplace_back(b, 1);
    } else {
      ++batch_runs.back().second;
    }
  }
  w.U64(batch_runs.size());
  for (const auto& [batch, count] : batch_runs) {
    w.U32(batch);
    w.U64(count);
  }

  // Access counts cluster (cold history is all zeros); RLE when it wins,
  // raw otherwise.
  std::vector<std::pair<uint64_t, uint64_t>> access_runs;
  for (const uint64_t a : snapshot.access_counts) {
    if (access_runs.empty() || access_runs.back().first != a) {
      access_runs.emplace_back(a, 1);
    } else {
      ++access_runs.back().second;
    }
  }
  const bool rle_wins =
      access_runs.size() * 2 < snapshot.access_counts.size();
  w.U8(rle_wins ? 1 : 0);
  if (rle_wins) {
    w.U64(access_runs.size());
    for (const auto& [value, count] : access_runs) {
      w.U64(value);
      w.U64(count);
    }
  } else {
    w.U64Array(snapshot.access_counts);
  }

  w.BitArray(snapshot.active);
  return out;
}

}  // namespace

std::vector<uint8_t> SerializeShardSnapshot(const ShardSnapshot& snapshot) {
  if (snapshot.mapped) return SerializeMappedSnapshot(snapshot);
  std::vector<uint8_t> out;
  ckpt::Writer w(&out);
  w.U32(kTableMagic);
  w.U32(kFormatVersion);

  const size_t cols = snapshot.schema.num_columns();
  w.U64(cols);
  for (size_t c = 0; c < cols; ++c) {
    const ColumnDef& def = snapshot.schema.column(c);
    w.String(def.name);
    w.I64(def.domain_lo);
    w.I64(def.domain_hi);
  }

  w.U64(snapshot.num_rows);
  w.U64(snapshot.next_tick);
  w.U64(snapshot.lifetime_forgotten);
  w.U32(snapshot.current_batch);

  // One logical array per column, spliced from the copy-on-write chunks.
  for (size_t c = 0; c < cols; ++c) {
    w.I64(snapshot.min_seen[c]);
    w.I64(snapshot.max_seen[c]);
    w.U64(snapshot.num_rows);
    for (const auto& chunk : snapshot.chunks) w.RawI64(chunk->columns[c]);
  }

  w.U64(snapshot.num_rows);
  for (const auto& chunk : snapshot.chunks) w.RawU64(chunk->ticks);
  w.U64(snapshot.num_rows);
  for (const auto& chunk : snapshot.chunks) w.RawU32(chunk->batches);
  w.U64Array(snapshot.access_counts);
  w.BitArray(snapshot.active);
  return out;
}

std::shared_ptr<const ShardSnapshot> SnapshotManager::CaptureShard(
    const Table& table, ShardState* state) {
  const uint64_t epoch = EpochOf(table);
  if (state->snapshot != nullptr && epoch == state->epoch) {
    // Level 1: nothing changed; the previous snapshot is still exact.
    ++last_stats_.shards_reused;
    return state->snapshot;
  }

  auto snapshot = std::make_shared<ShardSnapshot>();
  snapshot->epoch = epoch;
  snapshot->num_rows = table.num_rows();
  snapshot->schema = table.schema();
  snapshot->next_tick = table.lifetime_inserted();
  snapshot->lifetime_forgotten = table.lifetime_forgotten();
  snapshot->current_batch = table.current_batch();
  const size_t cols = table.num_columns();
  snapshot->min_seen.reserve(cols);
  snapshot->max_seen.reserve(cols);
  for (size_t c = 0; c < cols; ++c) {
    snapshot->min_seen.push_back(table.min_seen(c));
    snapshot->max_seen.push_back(table.max_seen(c));
  }

  if (table.mapped()) {
    // Mapped shard: the sealed payload lives in the partition files, so
    // the capture copies only the unsealed tail plus flat metadata —
    // chunk reuse has nothing large to reuse. Ticks are derived at
    // restore (mapped shards never compact), batches are captured flat
    // and run-length encoded at serialize time.
    snapshot->mapped = true;
    snapshot->storage_dir = table.storage().dir;
    snapshot->partition_rows = table.partition_rows();
    snapshot->partitions = table.partitions();
    const uint64_t sealed = table.sealed_rows();
    const uint64_t rows = table.num_rows();
    snapshot->tail_columns.resize(cols);
    for (size_t c = 0; c < cols; ++c) {
      snapshot->tail_columns[c].resize(static_cast<size_t>(rows - sealed));
      table.column(c).CopyRange(sealed, rows,
                                snapshot->tail_columns[c].data());
    }
    snapshot->batches.resize(rows);
    snapshot->access_counts.resize(rows);
    snapshot->active.resize(rows);
    for (RowId r = 0; r < rows; ++r) {
      snapshot->batches[r] = table.batch_of(r);
      snapshot->access_counts[r] = table.access_count(r);
      snapshot->active[r] = table.IsActive(r);
    }
    last_stats_.rows_copied += rows - sealed;
    ++last_stats_.shards_recaptured;
    state->epoch = epoch;
    state->num_rows = table.num_rows();
    state->next_tick = table.lifetime_inserted();
    state->scrub_epoch = table.scrub_epoch();
    state->snapshot = snapshot;
    return snapshot;
  }

  // Level 2: reuse prior chunks when the delta is append-only. Appends
  // grow rows and ticks in lockstep; compaction breaks the tick/row
  // equation and scrubs bump the scrub epoch, so both force a full
  // recapture. Forgets, revives and access bumps leave chunk contents
  // valid (they live in the bitmap / access arrays, recopied below).
  const bool append_only_delta =
      state->snapshot != nullptr && table.num_rows() >= state->num_rows &&
      table.lifetime_inserted() - state->next_tick ==
          table.num_rows() - state->num_rows &&
      table.scrub_epoch() == state->scrub_epoch;
  if (append_only_delta) {
    snapshot->chunks = state->snapshot->chunks;
    last_stats_.chunks_reused += snapshot->chunks.size();
    if (table.num_rows() > state->num_rows) {
      snapshot->chunks.push_back(
          CopyChunk(table, state->num_rows, table.num_rows()));
      last_stats_.rows_copied += table.num_rows() - state->num_rows;
    }
  } else if (table.num_rows() > 0) {
    snapshot->chunks = {CopyChunk(table, 0, table.num_rows())};
    last_stats_.rows_copied += table.num_rows();
  }

  // Level 3: flat per-row state, fresh every capture.
  const uint64_t rows = table.num_rows();
  snapshot->access_counts.resize(rows);
  snapshot->active.resize(rows);
  for (RowId r = 0; r < rows; ++r) {
    snapshot->access_counts[r] = table.access_count(r);
    snapshot->active[r] = table.IsActive(r);
  }

  ++last_stats_.shards_recaptured;
  state->epoch = epoch;
  state->num_rows = table.num_rows();
  state->next_tick = table.lifetime_inserted();
  state->scrub_epoch = table.scrub_epoch();
  state->snapshot = snapshot;
  return snapshot;
}

TableSnapshot SnapshotManager::Capture(
    const std::vector<const Table*>& shards, uint64_t ingest_cursor,
    const TierSet& tiers) {
  last_stats_ = CaptureStats{};
  states_.resize(shards.size());
  TableSnapshot out;
  out.ingest_cursor = ingest_cursor;
  out.shards.reserve(shards.size());
  for (size_t s = 0; s < shards.size(); ++s) {
    out.shards.push_back(CaptureShard(*shards[s], &states_[s]));
  }
  // Tier copies in the same pass: the caller holds mutations off for the
  // whole Capture, so table and tiers are one consistent cut.
  if (tiers.cold != nullptr) {
    out.cold = std::make_shared<ColdStore>(*tiers.cold);
  }
  if (tiers.summaries != nullptr) {
    out.summaries = std::make_shared<SummaryStore>(*tiers.summaries);
  }
  return out;
}

TableSnapshot SnapshotManager::Capture(const ShardedTable& table,
                                       const TierSet& tiers) {
  std::vector<const Table*> shards;
  shards.reserve(table.num_shards());
  for (uint32_t s = 0; s < table.num_shards(); ++s) {
    shards.push_back(&table.shard(s).table());
  }
  return Capture(shards, table.ingest_cursor(), tiers);
}

TableSnapshot SnapshotManager::Capture(const Table& table,
                                       const TierSet& tiers) {
  return Capture({&table}, table.lifetime_inserted(), tiers);
}

}  // namespace amnesia
