// Copyright 2026 The AmnesiaDB Authors
//
// Segmented event log: the same CRC-framed event stream as EventLog,
// striped across fixed-size segment files so that log compaction is O(1)
// and concurrent with appends. This is what keeps forgetting-heavy runs
// from stalling ingest at scale: EventLog::TruncateBefore rewrites the
// whole retained suffix under the append mutex (O(retained events) of
// blocked appenders after every checkpoint), while here truncation just
// unlinks the sealed segment files wholly below the covered LSN — the
// retention strategy production time-series stores use for expiry.
//
// Directory layout (`dir` is dedicated to one log):
//   <dir>/log-<base_lsn>.seg    events [base_lsn, next segment's base)
//
// Each segment opens with a self-describing header
// [u32 magic "ASEG"][u32 format version][u64 base LSN][u32 header CRC]
// followed by ordinary [len|crc|payload] event frames (frame_io.h). The
// base LSN lives in the header — not in a marker frame and not only in
// the filename — so LSN addressing survives renames and never depends on
// decoding a special event.
//
// Appends go to the newest ("active") segment and roll to a fresh file at
// the size threshold; sealed segments are immutable and fsynced at seal.
// TruncateBefore(lsn) splices sealed segments wholly below `lsn` out of
// the index under the mutex (O(1) per segment) and unlinks the files
// outside it, oldest first — each unlink is individually crash-atomic,
// and a crash mid-pass leaves a contiguous suffix plus fully-valid stale
// segments that the next truncation collects. A segment `lsn` lands
// inside is retained whole (compaction is conservative, never partial).
//
// Recovery (ReadSegmentedLogContents) scans segments in base-LSN order
// and stops at the first break in the chain: a torn tail in the newest
// segment is dropped (the expected crash artifact), a corrupt middle
// segment ends the valid prefix at its last good frame, and segments left
// behind by a crash between a checkpoint's GC and its unlink pass are
// read normally (replay starts at the manifest's covered LSN anyway).
//
// OpenForAppend on a directory whose process previously wrote the legacy
// single-file format (SegmentedLogOptions::migrate_from) performs a
// one-time migration: the v1 file's valid prefix — including its
// truncation-marker base LSN — is split into segments, and the v1 file is
// removed only after the split is durable, so a crash at any migration
// point leaves the v1 file authoritative and the next open re-runs the
// split from scratch.

#ifndef AMNESIA_DURABILITY_LOG_SEGMENTS_H_
#define AMNESIA_DURABILITY_LOG_SEGMENTS_H_

#include <cstdint>
#include <cstdio>
#include <deque>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.h"
#include "durability/event_log.h"

namespace amnesia {

/// \brief Tuning for a SegmentedEventLog.
struct SegmentedLogOptions {
  /// Roll to a fresh segment once the active file reaches this size.
  /// Smaller segments truncate at a finer grain but cost more files.
  uint64_t max_segment_bytes = 4u << 20;
  /// When appended frames reach the page cache (shared with EventLog).
  SyncPolicy sync;
  /// Legacy single-file log to migrate on OpenForAppend ("" = none). The
  /// file, when present, is authoritative: any segments already in the
  /// directory are a crashed earlier migration and are re-split.
  std::string migrate_from;
};

/// \brief Append-only event log striped across segment files. Implements
/// the same EventLogBase surface as EventLog; see the file comment for
/// the on-disk contract.
class SegmentedEventLog : public EventLogBase {
 public:
  /// Opens a fresh log in `dir` (created if missing); any segment files
  /// from a previous instance are removed first, mirroring the truncate
  /// semantics of EventLog::Open.
  static StatusOr<SegmentedEventLog> Open(
      const std::string& dir, const SegmentedLogOptions& options = {});

  /// Re-opens an existing log for appending: runs the legacy migration if
  /// configured, scans the segments, physically truncates a torn tail
  /// (and unlinks segments past a mid-chain break) BEFORE new appends
  /// land, and resumes in the newest segment. NotFound when the directory
  /// holds no log and there is nothing to migrate.
  static StatusOr<SegmentedEventLog> OpenForAppend(
      const std::string& dir, const SegmentedLogOptions& options = {});

  ~SegmentedEventLog() override;

  SegmentedEventLog(SegmentedEventLog&& other) noexcept;
  SegmentedEventLog& operator=(SegmentedEventLog&& other) noexcept;
  SegmentedEventLog(const SegmentedEventLog&) = delete;
  SegmentedEventLog& operator=(const SegmentedEventLog&) = delete;

  /// Appends one event to the active segment, rolling first when the
  /// size threshold is reached. Thread-safe; flushes per the sync policy.
  Status Append(const Event& event) override;

  /// Flushes pending frames of the active segment to the page cache.
  Status Flush() override;

  /// Unlinks every sealed segment wholly below `lsn`. O(1) per segment,
  /// concurrent with Append (appenders only wait for the index splice,
  /// never for the unlinks; truncations serialize among themselves so
  /// unlinks always proceed oldest-first), and conservative: a segment
  /// containing `lsn` is kept whole. Rejects `lsn` beyond next_lsn().
  Status TruncateBefore(uint64_t lsn) override;

  uint64_t next_lsn() const override;
  uint64_t base_lsn() const override;

  /// Returns the number of live segment files (sealed + active).
  uint64_t num_segments() const;
  /// Returns how many segments TruncateBefore has unlinked in total.
  uint64_t segments_unlinked() const;
  /// Returns the directory the segments live in.
  const std::string& dir() const { return dir_; }

 private:
  SegmentedEventLog() = default;

  /// Seals the active segment and opens a fresh one at next_lsn. Caller
  /// holds mu_.
  Status RollLocked();

  struct Sealed {
    uint64_t base = 0;   ///< LSN of the segment's first event.
    uint64_t count = 0;  ///< Events it holds (end LSN = base + count).
    std::string path;
  };

  mutable std::mutex mu_;
  /// Serializes TruncateBefore calls end to end (including the unlinks
  /// that run outside mu_): interleaved truncations could otherwise
  /// unlink newer segments before older ones, and a crash in that window
  /// would leave a base-LSN gap that recovery reads as the end of the
  /// chain. Always acquired before mu_, never the other way.
  std::mutex truncate_mu_;
  std::string dir_;
  SegmentedLogOptions options_;
  std::deque<Sealed> sealed_;   ///< Oldest first; contiguous up to active.
  uint64_t active_base_ = 0;    ///< LSN of the active segment's first event.
  uint64_t active_count_ = 0;   ///< Events in the active segment.
  uint64_t active_bytes_ = 0;   ///< Bytes written to the active segment.
  std::string active_path_;
  std::FILE* active_ = nullptr;
  uint64_t unlinked_total_ = 0;
  uint32_t pending_flush_ = 0;
  std::chrono::steady_clock::time_point oldest_pending_;
};

/// \brief Reads the valid prefix of a segmented log directory (see the
/// file comment for what ends the prefix). NotFound when `dir` does not
/// exist or holds no segment with a valid header.
StatusOr<EventLogContents> ReadSegmentedLogContents(const std::string& dir);

/// \brief Format-agnostic read: a directory at `path` is read as a
/// segmented log, anything else as a legacy single-file log. What
/// Recover() uses so one code path serves both CheckpointerOptions
/// log_format choices.
StatusOr<EventLogContents> ReadAnyEventLogContents(const std::string& path);

/// \brief The canonical event-log location under a checkpoint directory:
/// `<dir>/events.log` (a file) for kSingleFile, `<dir>/events.segs` (a
/// directory) for kSegmented. The one place the convention lives — the
/// simulator, demo and benches all derive the path Recover() takes from
/// here.
std::string EventLogPathFor(const std::string& checkpoint_dir,
                            LogFormat format);

/// \brief Removes whatever event log lives at `path` — a legacy file or
/// a segmented directory (its segment files, then the directory). A
/// missing path is fine. A NEW database instance reusing a checkpoint
/// directory calls this on the OTHER format's path: a stale journal left
/// by a previous run under a different log_format would pair with the
/// fresh manifests and corrupt recovery.
Status RemoveEventLog(const std::string& path);

}  // namespace amnesia

#endif  // AMNESIA_DURABILITY_LOG_SEGMENTS_H_
