// Copyright 2026 The AmnesiaDB Authors
//
// Background checkpoint writer and crash recovery. A checkpoint is a set
// of per-shard blobs (CheckpointTable format, produced from SnapshotManager
// captures), optional cold/summary tier blobs captured in the same pass,
// plus a manifest that names them all; the manifest commits atomically via
// rename, and a CURRENT file points at the newest one. Incremental
// checkpoints skip shards whose durability epoch has not advanced since
// the last durable write (and tier blobs whose bytes did not change): the
// new manifest references the existing blob file.
//
// Directory layout:
//   <dir>/ckpt-<id>-shard-<s>.blob  one shard at one epoch (immutable)
//   <dir>/ckpt-<id>-cold.blob       cold tier at checkpoint <id>
//   <dir>/ckpt-<id>-summary.blob    summary tier at checkpoint <id>
//   <dir>/MANIFEST-<id>             blob list + covered event-log LSN
//   <dir>/CURRENT                   name of the newest manifest
//   <dir>/<events file>             the EventLog (owned by the caller)
//
// Manifest v2 adds the tier entries; v1 manifests (no tiers) still
// decode, so directories written by pre-tier binaries recover unchanged.
//
// Retention GC: with CheckpointerOptions::retain = R, each commit keeps
// the newest R manifests, deletes manifests below them, deletes every
// ckpt-*.blob no retained manifest references, and truncates the event
// log below the oldest retained manifest's covered LSN — long-running
// processes hold a disk footprint proportional to R live checkpoints, not
// to history. GC runs strictly after the commit rename, so a crash at any
// GC step only leaves extra files for the next commit to collect.
//
// Recovery loads the newest manifest whose own checksum and every
// referenced blob verify, restores shards and tiers together, and replays
// the event-log tail past the manifest's covered LSN (forget events
// re-route into the restored tiers). A truncated or corrupt manifest
// falls back to the previous one (with a correspondingly longer replay).

#ifndef AMNESIA_DURABILITY_CHECKPOINTER_H_
#define AMNESIA_DURABILITY_CHECKPOINTER_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "common/status.h"
#include "common/thread_pool.h"
#include "durability/event_log.h"
#include "durability/snapshot.h"
#include "storage/cold_store.h"
#include "storage/sharded_table.h"
#include "storage/summary_store.h"
#include "storage/table.h"

namespace amnesia {

/// \brief One shard entry of a checkpoint manifest.
struct ManifestShard {
  uint64_t epoch = 0;     ///< Durability epoch the blob captures.
  std::string filename;   ///< Blob file name, relative to the directory.
  uint64_t size = 0;      ///< Blob size in bytes.
  uint32_t crc32 = 0;     ///< CRC-32 of the blob bytes.

  /// \name Mapped-shard storage (v3 manifests; empty for vector shards).
  /// @{
  /// Partition directory of the shard; recovery re-maps partition files
  /// from here. Empty means the blob is self-contained (vector shard).
  std::string storage_dir;
  uint64_t partition_rows = 0;
  /// Directory names of the partitions live at checkpoint time. Retention
  /// GC keeps a renamed-but-not-yet-unlinked `part-*.dropped` directory on
  /// disk as long as any retained manifest still lists its base name here.
  std::vector<std::string> partitions;
  /// @}

  bool mapped() const { return !storage_dir.empty(); }
};

/// \brief One tier entry of a v2 manifest (cold or summary store blob).
/// An empty filename means the checkpoint did not capture that tier.
struct ManifestBlob {
  std::string filename;  ///< Blob file name, relative to the directory.
  uint64_t size = 0;     ///< Blob size in bytes.
  uint32_t crc32 = 0;    ///< CRC-32 of the blob bytes.

  bool present() const { return !filename.empty(); }
};

/// \brief A decoded checkpoint manifest.
struct Manifest {
  uint64_t id = 0;           ///< Monotonic checkpoint id (1-based).
  uint64_t covered_lsn = 0;  ///< Event-log position the snapshot covers.
  uint64_t ingest_cursor = 0;
  std::vector<ManifestShard> shards;
  ManifestBlob cold;     ///< Cold tier blob (v2; absent in v1 manifests).
  ManifestBlob summary;  ///< Summary tier blob (v2; absent in v1).
};

/// \brief Serializes a manifest (self-checksummed: the trailing CRC-32
/// covers everything before it, so truncation is detectable). Emits the
/// v2 format unless a shard carries mapped-storage fields, in which case
/// it emits v3 — directories written by vector-backed runs stay
/// byte-compatible with older readers.
std::vector<uint8_t> EncodeManifest(const Manifest& manifest);

/// \brief Decodes and verifies a manifest buffer, v1 through v3 (v1 has
/// no tier entries, v2 no mapped-storage fields). InvalidArgument on a
/// truncated or corrupt manifest.
StatusOr<Manifest> DecodeManifest(const std::vector<uint8_t>& buffer);

/// \brief Creates `dir` if it does not exist (single level).
Status EnsureDir(const std::string& dir);

/// \brief Deletes every checkpoint artifact (manifests, CURRENT, shard and
/// tier blobs) in `dir`, leaving other files alone. A process starting a
/// NEW database instance into a previously used directory must call this
/// (the simulator does): its fresh event log invalidates the old
/// manifests' covered LSNs, and mixing the two would let recovery replay
/// new events onto an old snapshot. A process RESUMING recovered state
/// keeps the artifacts and reopens the log with EventLog::OpenForAppend
/// instead.
Status ClearCheckpointArtifacts(const std::string& dir);

/// \brief Checkpoint writer tuning.
struct CheckpointerOptions {
  /// Directory all checkpoint artifacts live in (created if missing).
  std::string dir;
  /// Pool used to serialize shard blobs concurrently (nullptr = the
  /// writing thread serializes them one by one).
  ThreadPool* pool = nullptr;
  /// true: Checkpoint() only captures the snapshot on the caller and a
  /// background thread serializes + writes. false: everything runs on the
  /// caller's thread (the foreground baseline the ablation measures).
  bool async = true;
  /// Retention count: after each commit keep only the newest `retain`
  /// manifests, delete the rest plus every blob they alone referenced,
  /// and truncate `log` (when given) below the oldest retained manifest's
  /// covered LSN. 0 disables GC entirely (keep every checkpoint).
  uint32_t retain = 0;
  /// Declared layout of the event log `log` points at; Make() rejects a
  /// `log` whose implementation does not match, so a caller cannot pair
  /// a directory with the wrong format by accident. (The GC itself
  /// truncates through the EventLogBase interface, and Recover() detects
  /// the on-disk format.) kSingleFile rewrites the retained suffix per
  /// truncation (O(retained events), appenders blocked); kSegmented
  /// unlinks whole segment files (O(1), concurrent with appends —
  /// durability/log_segments.h).
  LogFormat log_format = LogFormat::kSingleFile;
  /// Event log the retention GC truncates (nullptr = no log truncation).
  /// Must outlive the checkpointer; TruncateBefore is thread-safe against
  /// the mutator's concurrent appends.
  EventLogBase* log = nullptr;
  /// Called after each retention GC pass with the oldest retained
  /// manifest's covered LSN (the same bound the event-log truncation
  /// uses). Runs on the writing thread, so the callee must be
  /// thread-safe; the simulator installs the audit-ledger truncation
  /// here so sealed ledger segments age out in lockstep with the journal
  /// they attest. Leave empty for no side channel.
  std::function<void(uint64_t oldest_covered_lsn)> on_retention_gc;
  /// Test-only crash injection: when set, called between write phases
  /// ("shard-blobs", "tier-blobs", "manifest", "current", "gc") on the
  /// writing thread; returning true abandons the checkpoint at exactly
  /// that point, leaving the files written so far — the on-disk state of
  /// a process killed there. Production callers leave this empty.
  std::function<bool(const char*)> test_crash_hook;
};

/// \brief Checkpoint activity counters.
struct CheckpointerStats {
  uint64_t checkpoints = 0;        ///< Manifests committed.
  uint64_t shards_written = 0;     ///< Shard blob files written.
  uint64_t shards_skipped = 0;     ///< Shard blobs reused from a prior one.
  uint64_t tier_blobs_written = 0; ///< Cold/summary blob files written.
  uint64_t tier_blobs_skipped = 0; ///< Tier blobs reused (bytes unchanged).
  uint64_t bytes_written = 0;      ///< Blob + manifest bytes written.
  uint64_t manifests_gced = 0;     ///< Manifests deleted by retention GC.
  uint64_t blobs_gced = 0;         ///< Blob files deleted by retention GC.
  uint64_t partition_dirs_gced = 0;  ///< Dropped partition dirs unlinked.
  double caller_stall_ms = 0.0;    ///< Time Checkpoint() blocked its caller.
  double write_ms = 0.0;           ///< Serialize+write time (either thread).
};

/// \brief Writes versioned snapshots to disk, asynchronously by default.
///
/// One checkpoint may be in flight at a time; a second Checkpoint() call
/// first waits for the previous write to commit (counted as caller
/// stall). Mutators may run freely between Checkpoint() and commit: the
/// writer works off the captured snapshot only.
///
/// All state the background writer touches is heap-anchored in a shared
/// block the writer co-owns, so the checkpointer object itself may be
/// moved — even with a write in flight — without the writer ever
/// dereferencing a stale `this`.
class BackgroundCheckpointer {
 public:
  /// Validates the options and prepares the directory. Resumes the
  /// checkpoint-id sequence past any manifests already present.
  static StatusOr<BackgroundCheckpointer> Make(
      const CheckpointerOptions& options);

  ~BackgroundCheckpointer();

  BackgroundCheckpointer(BackgroundCheckpointer&& other) noexcept;
  BackgroundCheckpointer& operator=(BackgroundCheckpointer&&) = delete;
  BackgroundCheckpointer(const BackgroundCheckpointer&) = delete;
  BackgroundCheckpointer& operator=(const BackgroundCheckpointer&) = delete;

  /// Captures a snapshot of `shards` plus `tiers` (cheap, on the caller)
  /// and commits it covering the first `covered_lsn` events of the log.
  /// In async mode the serialize+write happens in the background and this
  /// returns immediately; errors surface from the next
  /// Checkpoint()/WaitIdle().
  Status Checkpoint(const std::vector<const Table*>& shards,
                    uint64_t ingest_cursor, uint64_t covered_lsn,
                    const TierSet& tiers = TierSet());

  /// Convenience overloads for the two table flavors.
  Status Checkpoint(const ShardedTable& table, uint64_t covered_lsn,
                    const TierSet& tiers = TierSet());
  Status Checkpoint(const Table& table, uint64_t covered_lsn,
                    const TierSet& tiers = TierSet());

  /// Blocks until any in-flight checkpoint committed; returns its status.
  Status WaitIdle();

  /// Returns a copy of the activity counters, safe to call while a write
  /// is in flight. Call WaitIdle() first for settled values.
  CheckpointerStats stats() const;

  /// \brief Non-blocking health sample for readiness probes (the
  /// introspection server's /readyz): the status the last finished write
  /// left behind and the newest committed manifest's covered LSN, read
  /// under the shared mutex without waiting for an in-flight write.
  struct Health {
    Status last_write = Status::OK();  ///< Not-OK until WaitIdle() clears it.
    uint64_t checkpoints = 0;          ///< Manifests committed so far.
    uint64_t last_durable_lsn = 0;     ///< Covered LSN of the newest commit.
  };
  Health health() const;

  /// Returns the snapshot capture accounting of the last Checkpoint().
  const CaptureStats& last_capture_stats() const {
    return snapshots_.last_stats();
  }

  /// Returns the options.
  const CheckpointerOptions& options() const { return shared_->options; }

 private:
  /// State shared with (and co-owned by) the background writer thread.
  /// `options` is immutable after Make(); everything else is guarded by
  /// `mu` — the writer mutates stats and the durable-blob cache while the
  /// caller thread may concurrently read stats() or move the object.
  struct Shared {
    CheckpointerOptions options;
    mutable std::mutex mu;
    CheckpointerStats stats;
    /// Last durably written blob per shard (epoch it captured + manifest
    /// entry); the incremental skip reuses these.
    std::vector<ManifestShard> durable_shards;
    ManifestBlob durable_cold;     ///< Last durable cold-tier blob.
    ManifestBlob durable_summary;  ///< Last durable summary-tier blob.
    Status inflight_status;
    /// Covered LSN of the newest committed manifest (checkpointer lag =
    /// log next_lsn minus this).
    uint64_t last_durable_lsn = 0;
  };

  explicit BackgroundCheckpointer(const CheckpointerOptions& options)
      : shared_(std::make_shared<Shared>()) {
    shared_->options = options;
  }

  /// Serializes and writes one captured snapshot, commits the manifest,
  /// then runs retention GC. Runs on the caller (sync) or the writer
  /// thread (async); touches only `shared`, never the checkpointer.
  static Status WriteSnapshot(const std::shared_ptr<Shared>& shared,
                              TableSnapshot snapshot, uint64_t covered_lsn,
                              uint64_t checkpoint_id);

  std::shared_ptr<Shared> shared_;
  SnapshotManager snapshots_;        // caller thread only
  uint64_t next_checkpoint_id_ = 1;  // caller thread only
  std::thread inflight_;
};

/// \brief Result of crash recovery.
struct RecoveredState {
  /// Restored shards in shard order; single-shard for unsharded tables.
  std::vector<Table> shards;
  /// Restored tiers (set iff the manifest carried the tier blob; v1
  /// manifests never do). Log-tail forget events were already re-routed
  /// into them.
  std::optional<ColdStore> cold;
  std::optional<SummaryStore> summaries;
  uint64_t ingest_cursor = 0;
  uint64_t checkpoint_id = 0;    ///< Manifest the recovery started from.
  uint64_t covered_lsn = 0;      ///< Events already inside the snapshot.
  uint64_t events_replayed = 0;  ///< Log-tail events applied on top.
};

/// \brief Recovers the newest consistent state from a checkpoint
/// directory plus an event log. `log_path` may be "" to skip replay
/// (restore the snapshot only), a legacy single-file log, or a segmented
/// log directory (the format is detected from disk). When the manifest
/// carries tier blobs the replayed forget events re-route into the
/// restored tiers; `sinks` only applies to tiers the manifest does NOT
/// cover (v1 directories). Returns NotFound when no valid manifest
/// exists.
StatusOr<RecoveredState> Recover(const std::string& dir,
                                 const std::string& log_path,
                                 const ReplaySinks& sinks = ReplaySinks());

/// \brief Wraps recovered shards back into a ShardedTable.
StatusOr<ShardedTable> RecoveredToShardedTable(RecoveredState state);

/// \brief Runs one retention-GC pass over `dir` outside any checkpoint:
/// keeps the newest `retain` manifests, deletes manifests and unreferenced
/// blobs below them, and truncates `log` (when given) below the oldest
/// retained manifest's covered LSN. This is exactly the pass each commit
/// runs after renaming CURRENT; call it standalone to converge a
/// directory whose writer was killed between a commit and the end of its
/// GC (a legitimate crash point that leaves extra files behind). A no-op
/// when `retain` is 0.
Status CollectCheckpointGarbage(const std::string& dir, uint32_t retain,
                                EventLogBase* log = nullptr);

}  // namespace amnesia

#endif  // AMNESIA_DURABILITY_CHECKPOINTER_H_
