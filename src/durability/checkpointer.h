// Copyright 2026 The AmnesiaDB Authors
//
// Background checkpoint writer and crash recovery. A checkpoint is a set
// of per-shard blobs (CheckpointTable format, produced from SnapshotManager
// captures) plus a manifest that names them; the manifest commits
// atomically via rename, and a CURRENT file points at the newest one.
// Incremental checkpoints skip shards whose durability epoch has not
// advanced since the last durable write: the new manifest references the
// existing blob file.
//
// Directory layout:
//   <dir>/shard-<s>-epoch-<e>.blob   one shard at one epoch (immutable)
//   <dir>/MANIFEST-<id>              shard list + covered event-log LSN
//   <dir>/CURRENT                    name of the newest manifest
//   <dir>/<events file>              the EventLog (owned by the caller)
//
// Recovery loads the newest manifest whose own checksum and every
// referenced blob verify, restores the shards, and replays the event-log
// tail past the manifest's covered LSN. A truncated or corrupt manifest
// falls back to the previous one (with a correspondingly longer replay).

#ifndef AMNESIA_DURABILITY_CHECKPOINTER_H_
#define AMNESIA_DURABILITY_CHECKPOINTER_H_

#include <cstdint>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/status.h"
#include "common/thread_pool.h"
#include "durability/event_log.h"
#include "durability/snapshot.h"
#include "storage/sharded_table.h"
#include "storage/table.h"

namespace amnesia {

/// \brief One shard entry of a checkpoint manifest.
struct ManifestShard {
  uint64_t epoch = 0;     ///< Durability epoch the blob captures.
  std::string filename;   ///< Blob file name, relative to the directory.
  uint64_t size = 0;      ///< Blob size in bytes.
  uint32_t crc32 = 0;     ///< CRC-32 of the blob bytes.
};

/// \brief A decoded checkpoint manifest.
struct Manifest {
  uint64_t id = 0;           ///< Monotonic checkpoint id (1-based).
  uint64_t covered_lsn = 0;  ///< Event-log position the snapshot covers.
  uint64_t ingest_cursor = 0;
  std::vector<ManifestShard> shards;
};

/// \brief Serializes a manifest (self-checksummed: the trailing CRC-32
/// covers everything before it, so truncation is detectable).
std::vector<uint8_t> EncodeManifest(const Manifest& manifest);

/// \brief Decodes and verifies a manifest buffer (InvalidArgument on a
/// truncated or corrupt manifest).
StatusOr<Manifest> DecodeManifest(const std::vector<uint8_t>& buffer);

/// \brief Creates `dir` if it does not exist (single level).
Status EnsureDir(const std::string& dir);

/// \brief Deletes every checkpoint artifact (manifests, CURRENT, shard
/// blobs) in `dir`, leaving other files alone. A process starting a NEW
/// database instance into a previously used directory must call this (the
/// simulator does): its fresh event log invalidates the old manifests'
/// covered LSNs, and mixing the two would let recovery replay new events
/// onto an old snapshot. A process RESUMING recovered state keeps the
/// artifacts and reopens the log with EventLog::OpenForAppend instead.
Status ClearCheckpointArtifacts(const std::string& dir);

/// \brief Checkpoint writer tuning.
struct CheckpointerOptions {
  /// Directory all checkpoint artifacts live in (created if missing).
  std::string dir;
  /// Pool used to serialize shard blobs concurrently (nullptr = the
  /// writing thread serializes them one by one).
  ThreadPool* pool = nullptr;
  /// true: Checkpoint() only captures the snapshot on the caller and a
  /// background thread serializes + writes. false: everything runs on the
  /// caller's thread (the foreground baseline the ablation measures).
  bool async = true;
};

/// \brief Checkpoint activity counters.
struct CheckpointerStats {
  uint64_t checkpoints = 0;      ///< Manifests committed.
  uint64_t shards_written = 0;   ///< Blob files written.
  uint64_t shards_skipped = 0;   ///< Blobs reused from a prior checkpoint.
  uint64_t bytes_written = 0;    ///< Blob + manifest bytes written.
  double caller_stall_ms = 0.0;  ///< Time Checkpoint() blocked its caller.
  double write_ms = 0.0;         ///< Serialize+write time (either thread).
};

/// \brief Writes versioned snapshots to disk, asynchronously by default.
///
/// One checkpoint may be in flight at a time; a second Checkpoint() call
/// first waits for the previous write to commit (counted as caller
/// stall). Mutators may run freely between Checkpoint() and commit: the
/// writer works off the captured snapshot only.
class BackgroundCheckpointer {
 public:
  /// Validates the options and prepares the directory. Resumes the
  /// checkpoint-id sequence past any manifests already present.
  static StatusOr<BackgroundCheckpointer> Make(
      const CheckpointerOptions& options);

  ~BackgroundCheckpointer();

  BackgroundCheckpointer(BackgroundCheckpointer&& other) noexcept;
  BackgroundCheckpointer& operator=(BackgroundCheckpointer&&) = delete;
  BackgroundCheckpointer(const BackgroundCheckpointer&) = delete;
  BackgroundCheckpointer& operator=(const BackgroundCheckpointer&) = delete;

  /// Captures a snapshot of `shards` (cheap, on the caller) and commits it
  /// covering the first `covered_lsn` events of the log. In async mode the
  /// serialize+write happens in the background and this returns
  /// immediately; errors surface from the next Checkpoint()/WaitIdle().
  Status Checkpoint(const std::vector<const Table*>& shards,
                    uint64_t ingest_cursor, uint64_t covered_lsn);

  /// Convenience overloads for the two table flavors.
  Status Checkpoint(const ShardedTable& table, uint64_t covered_lsn);
  Status Checkpoint(const Table& table, uint64_t covered_lsn);

  /// Blocks until any in-flight checkpoint committed; returns its status.
  Status WaitIdle();

  /// Returns activity counters. Call WaitIdle() first for settled values.
  const CheckpointerStats& stats() const { return stats_; }

  /// Returns the snapshot capture accounting of the last Checkpoint().
  const CaptureStats& last_capture_stats() const {
    return snapshots_.last_stats();
  }

  /// Returns the options.
  const CheckpointerOptions& options() const { return options_; }

 private:
  explicit BackgroundCheckpointer(const CheckpointerOptions& options)
      : options_(options) {}

  /// Serializes and writes one captured snapshot, then commits the
  /// manifest. Runs on the caller (sync) or the writer thread (async).
  Status WriteSnapshot(TableSnapshot snapshot, uint64_t covered_lsn,
                       uint64_t checkpoint_id);

  CheckpointerOptions options_;
  SnapshotManager snapshots_;
  CheckpointerStats stats_;
  uint64_t next_checkpoint_id_ = 1;
  /// Last durably written blob per shard (epoch it captured + manifest
  /// entry); the incremental skip reuses these.
  std::vector<ManifestShard> durable_blobs_;
  std::thread inflight_;
  std::mutex inflight_mu_;
  Status inflight_status_;
};

/// \brief Result of crash recovery.
struct RecoveredState {
  /// Restored shards in shard order; single-shard for unsharded tables.
  std::vector<Table> shards;
  uint64_t ingest_cursor = 0;
  uint64_t checkpoint_id = 0;    ///< Manifest the recovery started from.
  uint64_t covered_lsn = 0;      ///< Events already inside the snapshot.
  uint64_t events_replayed = 0;  ///< Log-tail events applied on top.
};

/// \brief Recovers the newest consistent state from a checkpoint
/// directory plus an event log. `log_path` may be "" to skip replay
/// (restore the snapshot only). Returns NotFound when no valid manifest
/// exists.
StatusOr<RecoveredState> Recover(const std::string& dir,
                                 const std::string& log_path,
                                 const ReplaySinks& sinks = ReplaySinks());

/// \brief Wraps recovered shards back into a ShardedTable.
StatusOr<ShardedTable> RecoveredToShardedTable(RecoveredState state);

}  // namespace amnesia

#endif  // AMNESIA_DURABILITY_CHECKPOINTER_H_
