// Copyright 2026 The AmnesiaDB Authors

#include "durability/checkpointer.h"

#include <dirent.h>
#include <sys/stat.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <limits>
#include <map>
#include <set>
#include <utility>

#include "common/logging.h"
#include "durability/log_segments.h"
#include "obs/engine_metrics.h"
#include "obs/trace.h"
#include "storage/checkpoint.h"
#include "storage/checkpoint_io.h"
#include "storage/mapped_file.h"

namespace amnesia {

namespace {

constexpr uint32_t kManifestMagic = 0x414D4D46;  // "AMMF"
// v1: shard blobs only (PR 3 binaries). v2: + cold/summary tier entries.
// v3: + per-shard mapped-storage fields (partition directory, geometry,
// live partition names); written only when a shard actually is mapped.
constexpr uint32_t kManifestVersionV1 = 1;
constexpr uint32_t kManifestVersionV2 = 2;
constexpr uint32_t kManifestVersionV3 = 3;
constexpr const char* kManifestPrefix = "MANIFEST-";
constexpr const char* kCurrentName = "CURRENT";

double MillisSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

std::string ManifestName(uint64_t id) {
  return kManifestPrefix + std::to_string(id);
}

std::string BlobName(uint64_t checkpoint_id, size_t shard) {
  return "ckpt-" + std::to_string(checkpoint_id) + "-shard-" +
         std::to_string(shard) + ".blob";
}

std::string TierBlobName(uint64_t checkpoint_id, const char* tier) {
  return "ckpt-" + std::to_string(checkpoint_id) + "-" + tier + ".blob";
}

bool IsBlobName(const std::string& name) {
  return name.rfind("ckpt-", 0) == 0 && name.size() > 5 &&
         name.rfind(".blob") == name.size() - 5;
}

/// Returns the ids of every MANIFEST-<id> file in `dir`, unsorted.
std::vector<uint64_t> ListManifestIds(const std::string& dir) {
  std::vector<uint64_t> ids;
  DIR* d = opendir(dir.c_str());
  if (d == nullptr) return ids;
  const size_t prefix_len = std::strlen(kManifestPrefix);
  while (dirent* entry = readdir(d)) {
    const std::string name = entry->d_name;
    if (name.rfind(kManifestPrefix, 0) != 0) continue;
    const std::string suffix = name.substr(prefix_len);
    if (suffix.empty() ||
        suffix.find_first_not_of("0123456789") != std::string::npos) {
      continue;
    }
    ids.push_back(std::strtoull(suffix.c_str(), nullptr, 10));
  }
  closedir(d);
  return ids;
}

void EncodeManifestBlob(ckpt::Writer* w, const ManifestBlob& blob) {
  w->U8(blob.present() ? 1 : 0);
  if (!blob.present()) return;
  w->String(blob.filename);
  w->U64(blob.size);
  w->U32(blob.crc32);
}

Status DecodeManifestBlob(ckpt::Reader* r, ManifestBlob* blob) {
  uint8_t present = 0;
  AMNESIA_RETURN_NOT_OK(r->U8(&present));
  if (present == 0) {
    *blob = ManifestBlob{};
    return Status::OK();
  }
  AMNESIA_RETURN_NOT_OK(r->String(&blob->filename));
  if (blob->filename.empty()) {
    return Status::InvalidArgument("manifest tier entry without a filename");
  }
  AMNESIA_RETURN_NOT_OK(r->U64(&blob->size));
  AMNESIA_RETURN_NOT_OK(r->U32(&blob->crc32));
  return Status::OK();
}

}  // namespace

std::vector<uint8_t> EncodeManifest(const Manifest& manifest) {
  bool any_mapped = false;
  for (const ManifestShard& shard : manifest.shards) {
    any_mapped = any_mapped || shard.mapped();
  }
  std::vector<uint8_t> out;
  ckpt::Writer w(&out);
  w.U32(kManifestMagic);
  w.U32(any_mapped ? kManifestVersionV3 : kManifestVersionV2);
  w.U64(manifest.id);
  w.U64(manifest.covered_lsn);
  w.U64(manifest.ingest_cursor);
  w.U64(manifest.shards.size());
  for (const ManifestShard& shard : manifest.shards) {
    w.U64(shard.epoch);
    w.String(shard.filename);
    w.U64(shard.size);
    w.U32(shard.crc32);
    if (any_mapped) {
      w.String(shard.storage_dir);
      w.U64(shard.partition_rows);
      w.U64(shard.partitions.size());
      for (const std::string& name : shard.partitions) w.String(name);
    }
  }
  EncodeManifestBlob(&w, manifest.cold);
  EncodeManifestBlob(&w, manifest.summary);
  w.U32(ckpt::Crc32(out));
  return out;
}

StatusOr<Manifest> DecodeManifest(const std::vector<uint8_t>& buffer) {
  if (buffer.size() < sizeof(uint32_t)) {
    return Status::InvalidArgument("manifest truncated");
  }
  uint32_t stored_crc = 0;
  std::memcpy(&stored_crc, buffer.data() + buffer.size() - sizeof(stored_crc),
              sizeof(stored_crc));
  if (ckpt::Crc32(buffer.data(), buffer.size() - sizeof(stored_crc)) !=
      stored_crc) {
    return Status::InvalidArgument("manifest checksum mismatch (truncated "
                                   "or corrupt)");
  }

  ckpt::Reader r(buffer);
  uint32_t magic = 0, version = 0;
  AMNESIA_RETURN_NOT_OK(r.U32(&magic));
  if (magic != kManifestMagic) {
    return Status::InvalidArgument("not an AmnesiaDB checkpoint manifest");
  }
  AMNESIA_RETURN_NOT_OK(r.U32(&version));
  if (version < kManifestVersionV1 || version > kManifestVersionV3) {
    return Status::FailedPrecondition("unsupported manifest version " +
                                      std::to_string(version));
  }
  Manifest manifest;
  AMNESIA_RETURN_NOT_OK(r.U64(&manifest.id));
  AMNESIA_RETURN_NOT_OK(r.U64(&manifest.covered_lsn));
  AMNESIA_RETURN_NOT_OK(r.U64(&manifest.ingest_cursor));
  uint64_t shards = 0;
  AMNESIA_RETURN_NOT_OK(r.U64(&shards));
  if (shards == 0 || shards > kMaxShards) {
    return Status::InvalidArgument("implausible manifest shard count");
  }
  manifest.shards.resize(static_cast<size_t>(shards));
  for (ManifestShard& shard : manifest.shards) {
    AMNESIA_RETURN_NOT_OK(r.U64(&shard.epoch));
    AMNESIA_RETURN_NOT_OK(r.String(&shard.filename));
    AMNESIA_RETURN_NOT_OK(r.U64(&shard.size));
    AMNESIA_RETURN_NOT_OK(r.U32(&shard.crc32));
    if (version >= kManifestVersionV3) {
      AMNESIA_RETURN_NOT_OK(r.String(&shard.storage_dir));
      AMNESIA_RETURN_NOT_OK(r.U64(&shard.partition_rows));
      uint64_t parts = 0;
      AMNESIA_RETURN_NOT_OK(r.U64(&parts));
      if (parts > (uint64_t{1} << 32)) {
        return Status::InvalidArgument("implausible manifest partition count");
      }
      shard.partitions.resize(static_cast<size_t>(parts));
      for (std::string& name : shard.partitions) {
        AMNESIA_RETURN_NOT_OK(r.String(&name));
      }
    }
  }
  if (version >= kManifestVersionV2) {
    AMNESIA_RETURN_NOT_OK(DecodeManifestBlob(&r, &manifest.cold));
    AMNESIA_RETURN_NOT_OK(DecodeManifestBlob(&r, &manifest.summary));
  }
  return manifest;
}

Status ClearCheckpointArtifacts(const std::string& dir) {
  DIR* d = opendir(dir.c_str());
  if (d == nullptr) return Status::OK();  // nothing to clear
  std::vector<std::string> doomed;
  while (dirent* entry = readdir(d)) {
    const std::string name = entry->d_name;
    if (name.rfind(kManifestPrefix, 0) == 0 || name == kCurrentName ||
        IsBlobName(name)) {
      doomed.push_back(dir + "/" + name);
    }
  }
  closedir(d);
  for (const std::string& path : doomed) {
    if (std::remove(path.c_str()) != 0) {
      return Status::Internal("cannot remove stale checkpoint artifact '" +
                              path + "'");
    }
  }
  return Status::OK();
}

Status EnsureDir(const std::string& dir) {
  struct stat st;
  if (stat(dir.c_str(), &st) == 0) {
    if (!S_ISDIR(st.st_mode)) {
      return Status::InvalidArgument("'" + dir + "' exists but is not a "
                                     "directory");
    }
    return Status::OK();
  }
  if (mkdir(dir.c_str(), 0755) != 0) {
    return Status::Internal("cannot create checkpoint directory '" + dir +
                            "'");
  }
  return Status::OK();
}

// -------------------------------------------------- BackgroundCheckpointer

StatusOr<BackgroundCheckpointer> BackgroundCheckpointer::Make(
    const CheckpointerOptions& options) {
  if (options.dir.empty()) {
    return Status::InvalidArgument("checkpointer needs a directory");
  }
  if (options.log != nullptr) {
    const bool is_segmented =
        dynamic_cast<SegmentedEventLog*>(options.log) != nullptr;
    if (is_segmented != (options.log_format == LogFormat::kSegmented)) {
      return Status::InvalidArgument(
          "log_format does not match the log implementation");
    }
  }
  AMNESIA_RETURN_NOT_OK(EnsureDir(options.dir));
  BackgroundCheckpointer out(options);
  // Resume the id sequence past manifests from a previous incarnation so
  // blob names never collide across a crash.
  const std::vector<uint64_t> ids = ListManifestIds(options.dir);
  for (uint64_t id : ids) {
    out.next_checkpoint_id_ = std::max(out.next_checkpoint_id_, id + 1);
  }
  return out;
}

BackgroundCheckpointer::~BackgroundCheckpointer() {
  if (inflight_.joinable()) inflight_.join();
}

BackgroundCheckpointer::BackgroundCheckpointer(
    BackgroundCheckpointer&& other) noexcept
    : shared_(std::move(other.shared_)),
      snapshots_(std::move(other.snapshots_)),
      next_checkpoint_id_(other.next_checkpoint_id_),
      inflight_(std::move(other.inflight_)) {
  // Safe even mid-flight: the writer thread co-owns the Shared block and
  // never touches the checkpointer object, so the thread handle simply
  // moves along with the state it belongs to.
}

Status BackgroundCheckpointer::WaitIdle() {
  if (inflight_.joinable()) inflight_.join();
  std::lock_guard<std::mutex> lock(shared_->mu);
  Status out = std::move(shared_->inflight_status);
  shared_->inflight_status = Status::OK();
  return out;
}

CheckpointerStats BackgroundCheckpointer::stats() const {
  std::lock_guard<std::mutex> lock(shared_->mu);
  return shared_->stats;
}

BackgroundCheckpointer::Health BackgroundCheckpointer::health() const {
  std::lock_guard<std::mutex> lock(shared_->mu);
  Health h;
  h.last_write = shared_->inflight_status;
  h.checkpoints = shared_->stats.checkpoints;
  h.last_durable_lsn = shared_->last_durable_lsn;
  return h;
}

namespace {

/// What one retention-GC pass deleted.
struct GcResult {
  uint64_t manifests_deleted = 0;
  uint64_t blobs_deleted = 0;
  uint64_t partition_dirs_deleted = 0;
};

/// Deletes manifests older than the newest `retain`, blobs no retained
/// manifest references, and the event-log prefix below the oldest
/// retained covered LSN. Runs strictly after the commit rename; every
/// deletion is individually crash-safe (a crash mid-GC leaves extra files
/// the next pass collects). When a retained manifest fails to decode the
/// pass backs off without deleting anything: GC must never turn a
/// readable directory into an unreadable one.
Status RunRetentionGc(const CheckpointerOptions& options, GcResult* out) {
  std::vector<uint64_t> ids = ListManifestIds(options.dir);
  std::sort(ids.begin(), ids.end(), std::greater<uint64_t>());
  if (ids.empty()) return Status::OK();
  const size_t keep = std::min<size_t>(options.retain, ids.size());

  std::set<std::string> referenced;
  // Per mapped storage directory: base names of partitions some retained
  // manifest still lists as live.
  std::map<std::string, std::set<std::string>> live_partitions;
  uint64_t oldest_covered = std::numeric_limits<uint64_t>::max();
  for (size_t i = 0; i < keep; ++i) {
    // Backing off keeps GC from ever turning a readable directory into an
    // unreadable one — but it also means the disk stops shrinking, so the
    // operator must be able to see WHICH manifest is pinning it.
    auto bytes = ReadBytesFile(options.dir + "/" + ManifestName(ids[i]));
    if (!bytes.ok()) {
      AMNESIA_LOG(kWarning)
          << "retention GC backing off: cannot read retained manifest "
          << ids[i] << " in '" << options.dir
          << "' (" << bytes.status().ToString()
          << "); no checkpoint, blob or log prefix will be deleted until "
             "it reads";
      return Status::OK();  // back off, collect next time
    }
    auto manifest = DecodeManifest(bytes.value());
    if (!manifest.ok()) {
      AMNESIA_LOG(kWarning)
          << "retention GC backing off: retained manifest " << ids[i]
          << " in '" << options.dir << "' is undecodable ("
          << manifest.status().ToString()
          << "); no checkpoint, blob or log prefix will be deleted until "
             "it decodes";
      return Status::OK();
    }
    for (const ManifestShard& shard : manifest->shards) {
      referenced.insert(shard.filename);
      if (shard.mapped()) {
        live_partitions[shard.storage_dir].insert(shard.partitions.begin(),
                                                  shard.partitions.end());
      }
    }
    if (manifest->cold.present()) referenced.insert(manifest->cold.filename);
    if (manifest->summary.present()) {
      referenced.insert(manifest->summary.filename);
    }
    oldest_covered = std::min(oldest_covered, manifest->covered_lsn);
  }

  for (size_t i = keep; i < ids.size(); ++i) {
    const std::string path = options.dir + "/" + ManifestName(ids[i]);
    if (std::remove(path.c_str()) != 0) {
      return Status::Internal("retention GC cannot remove '" + path + "'");
    }
    ++out->manifests_deleted;
  }

  std::vector<std::string> orphans;
  DIR* d = opendir(options.dir.c_str());
  if (d != nullptr) {
    while (dirent* entry = readdir(d)) {
      const std::string name = entry->d_name;
      if (IsBlobName(name) && referenced.count(name) == 0) {
        orphans.push_back(name);
      }
    }
    closedir(d);
  }
  for (const std::string& name : orphans) {
    const std::string path = options.dir + "/" + name;
    if (std::remove(path.c_str()) != 0) {
      return Status::Internal("retention GC cannot remove '" + path + "'");
    }
    ++out->blobs_deleted;
  }

  // Partition-directory GC. Dropping a partition renames its directory to
  // `part-*.dropped` (the O(1) forget) and leaves the unlink to this
  // pass: the renamed bytes must stay on disk while any retained manifest
  // still lists the partition as live, because recovering from such a
  // manifest re-maps the files (under either name) and replays the drop
  // event from the log tail. Once no retained manifest lists it, every
  // recovery path sees it dropped and the bytes are unreachable.
  for (const auto& [storage_dir, live] : live_partitions) {
    auto entries = ListDirEntries(storage_dir);
    if (!entries.ok()) continue;  // storage dir gone; nothing to collect
    for (const std::string& name : entries.value()) {
      Tick lo = 0, hi = 0;
      bool dropped = false;
      if (!ParsePartitionDirName(name, &lo, &hi, &dropped) || !dropped) {
        continue;
      }
      if (live.count(PartitionDirName(lo, hi)) > 0) continue;
      if (RemoveDirRecursive(storage_dir + "/" + name).ok()) {
        ++out->partition_dirs_deleted;
      }  // else: leave it for the next pass
    }
  }

  if (options.test_crash_hook && options.test_crash_hook("gc")) {
    return Status::FailedPrecondition("injected crash after GC deletions");
  }
  if (options.log != nullptr &&
      oldest_covered != std::numeric_limits<uint64_t>::max()) {
    AMNESIA_RETURN_NOT_OK(options.log->TruncateBefore(oldest_covered));
  }
  if (options.on_retention_gc &&
      oldest_covered != std::numeric_limits<uint64_t>::max()) {
    options.on_retention_gc(oldest_covered);
  }
  return Status::OK();
}

/// Serializes a tier blob, reusing the previous durable blob when the
/// bytes are unchanged (size + CRC match). Updates `entry` (the manifest
/// slot), `durable` (the skip cache) and the counters.
Status WriteTierBlob(const std::string& dir, const std::vector<uint8_t>& bytes,
                     const std::string& filename, ManifestBlob* entry,
                     ManifestBlob* durable, uint64_t* bytes_written,
                     uint64_t* written, uint64_t* skipped) {
  ManifestBlob fresh;
  fresh.filename = filename;
  fresh.size = bytes.size();
  fresh.crc32 = ckpt::Crc32(bytes);
  if (durable->present() && durable->size == fresh.size &&
      durable->crc32 == fresh.crc32) {
    *entry = *durable;  // reference the existing file
    ++*skipped;
    return Status::OK();
  }
  AMNESIA_RETURN_NOT_OK(WriteBytesFileAtomic(bytes, dir + "/" + filename));
  *bytes_written += bytes.size();
  ++*written;
  *entry = fresh;
  *durable = fresh;
  return Status::OK();
}

}  // namespace

Status BackgroundCheckpointer::WriteSnapshot(
    const std::shared_ptr<Shared>& shared, TableSnapshot snapshot,
    uint64_t covered_lsn, uint64_t checkpoint_id) {
  const auto start = std::chrono::steady_clock::now();
  obs::EngineMetrics& metrics = obs::EngineMetrics::Get();
  obs::TraceScope trace("checkpoint.write", metrics.checkpoint_write_ns);
  trace.Annotate("checkpoint_id", static_cast<int64_t>(checkpoint_id));
  const CheckpointerOptions& options = shared->options;
  auto crash = [&options](const char* phase) {
    return options.test_crash_hook && options.test_crash_hook(phase);
  };
  const size_t num_shards = snapshot.shards.size();

  // Work off a local copy of the durable-blob cache; the shared cache and
  // stats only update after the manifest commits, so an abandoned write
  // never poisons the skip decisions of the next one.
  std::vector<ManifestShard> durable_shards;
  ManifestBlob durable_cold, durable_summary;
  {
    std::lock_guard<std::mutex> lock(shared->mu);
    shared->durable_shards.resize(num_shards);
    durable_shards = shared->durable_shards;
    durable_cold = shared->durable_cold;
    durable_summary = shared->durable_summary;
  }
  // A checkpoint without a tier commits a manifest without that tier's
  // entry, so nothing keeps the cached blob alive through retention GC.
  // Drop the cache: the next tiered checkpoint must write fresh bytes
  // rather than reference a file GC may have deleted.
  if (snapshot.cold == nullptr) durable_cold = ManifestBlob{};
  if (snapshot.summaries == nullptr) durable_summary = ManifestBlob{};

  Manifest manifest;
  manifest.id = checkpoint_id;
  manifest.covered_lsn = covered_lsn;
  manifest.ingest_cursor = snapshot.ingest_cursor;
  manifest.shards.resize(num_shards);

  CheckpointerStats delta;

  // Serialize the shards whose epoch advanced, concurrently on the pool
  // when one is given. The writing thread is never a pool worker, so
  // waiting on the futures is safe.
  std::vector<size_t> to_write;
  for (size_t s = 0; s < num_shards; ++s) {
    if (!durable_shards[s].filename.empty() &&
        durable_shards[s].epoch == snapshot.shards[s]->epoch) {
      manifest.shards[s] = durable_shards[s];
      ++delta.shards_skipped;
    } else {
      to_write.push_back(s);
    }
  }
  const std::vector<std::vector<uint8_t>> blobs = ckpt::SerializeBlobs(
      options.pool, num_shards, to_write, [&snapshot](size_t s) {
        return SerializeShardSnapshot(*snapshot.shards[s]);
      });

  for (size_t s : to_write) {
    ManifestShard entry;
    entry.epoch = snapshot.shards[s]->epoch;
    entry.filename = BlobName(checkpoint_id, s);
    entry.size = blobs[s].size();
    entry.crc32 = ckpt::Crc32(blobs[s]);
    if (snapshot.shards[s]->mapped) {
      entry.storage_dir = snapshot.shards[s]->storage_dir;
      entry.partition_rows = snapshot.shards[s]->partition_rows;
      for (const PartitionMeta& p : snapshot.shards[s]->partitions) {
        if (!p.dropped) {
          entry.partitions.push_back(PartitionDirName(p.epoch_lo, p.epoch_hi));
        }
      }
    }
    AMNESIA_RETURN_NOT_OK(
        WriteBytesFileAtomic(blobs[s], options.dir + "/" + entry.filename));
    delta.bytes_written += blobs[s].size();
    ++delta.shards_written;
    manifest.shards[s] = entry;
    durable_shards[s] = std::move(entry);
  }
  if (crash("shard-blobs")) {
    return Status::FailedPrecondition("injected crash after shard blobs");
  }

  // Tier blobs, captured in the same pass as the shards and committed by
  // the same manifest — the whole point of manifest v2.
  if (snapshot.cold != nullptr) {
    AMNESIA_RETURN_NOT_OK(WriteTierBlob(
        options.dir, CheckpointColdStore(*snapshot.cold),
        TierBlobName(checkpoint_id, "cold"), &manifest.cold, &durable_cold,
        &delta.bytes_written, &delta.tier_blobs_written,
        &delta.tier_blobs_skipped));
  }
  if (snapshot.summaries != nullptr) {
    AMNESIA_RETURN_NOT_OK(WriteTierBlob(
        options.dir, CheckpointSummaryStore(*snapshot.summaries),
        TierBlobName(checkpoint_id, "summary"), &manifest.summary,
        &durable_summary, &delta.bytes_written, &delta.tier_blobs_written,
        &delta.tier_blobs_skipped));
  }
  if (crash("tier-blobs")) {
    return Status::FailedPrecondition("injected crash after tier blobs");
  }

  // Commit point: the manifest (then CURRENT) renames into place.
  const std::vector<uint8_t> manifest_bytes = EncodeManifest(manifest);
  AMNESIA_RETURN_NOT_OK(WriteBytesFileAtomic(
      manifest_bytes, options.dir + "/" + ManifestName(checkpoint_id)));
  delta.bytes_written += manifest_bytes.size();
  if (crash("manifest")) {
    return Status::FailedPrecondition("injected crash after manifest");
  }
  const std::string current = ManifestName(checkpoint_id);
  AMNESIA_RETURN_NOT_OK(WriteBytesFileAtomic(
      std::vector<uint8_t>(current.begin(), current.end()),
      options.dir + "/" + kCurrentName));
  ++delta.checkpoints;
  if (crash("current")) {
    return Status::FailedPrecondition("injected crash after CURRENT");
  }

  // Retention GC, strictly after the commit.
  GcResult gc;
  Status gc_status = Status::OK();
  if (options.retain > 0) {
    obs::TraceScope gc_trace("checkpoint.gc", metrics.checkpoint_gc_ns);
    gc_status = RunRetentionGc(options, &gc);
    gc_trace.Annotate("manifests_deleted",
                      static_cast<int64_t>(gc.manifests_deleted));
    gc_trace.Annotate("blobs_deleted",
                      static_cast<int64_t>(gc.blobs_deleted));
  }
  delta.manifests_gced = gc.manifests_deleted;
  delta.blobs_gced = gc.blobs_deleted;
  delta.partition_dirs_gced = gc.partition_dirs_deleted;
  delta.write_ms = MillisSince(start);

  // Mirror the committed delta into the registry at the same point the
  // per-instance stats absorb it, so both views advance together.
  metrics.checkpoint_commits->Inc(delta.checkpoints);
  metrics.checkpoint_bytes_written->Inc(delta.bytes_written);
  metrics.checkpoint_shards_written->Inc(delta.shards_written);
  metrics.checkpoint_shards_skipped->Inc(delta.shards_skipped);
  trace.Annotate("bytes_written", static_cast<int64_t>(delta.bytes_written));
  trace.Annotate("shards_skipped",
                 static_cast<int64_t>(delta.shards_skipped));

  {
    std::lock_guard<std::mutex> lock(shared->mu);
    shared->durable_shards = std::move(durable_shards);
    shared->durable_cold = durable_cold;
    shared->durable_summary = durable_summary;
    shared->stats.checkpoints += delta.checkpoints;
    shared->stats.shards_written += delta.shards_written;
    shared->stats.shards_skipped += delta.shards_skipped;
    shared->stats.tier_blobs_written += delta.tier_blobs_written;
    shared->stats.tier_blobs_skipped += delta.tier_blobs_skipped;
    shared->stats.bytes_written += delta.bytes_written;
    shared->stats.manifests_gced += delta.manifests_gced;
    shared->stats.blobs_gced += delta.blobs_gced;
    shared->stats.partition_dirs_gced += delta.partition_dirs_gced;
    shared->stats.write_ms += delta.write_ms;
    if (delta.checkpoints > 0 &&
        covered_lsn > shared->last_durable_lsn) {
      shared->last_durable_lsn = covered_lsn;
    }
  }
  return gc_status;
}

Status BackgroundCheckpointer::Checkpoint(
    const std::vector<const Table*>& shards, uint64_t ingest_cursor,
    uint64_t covered_lsn, const TierSet& tiers) {
  const auto start = std::chrono::steady_clock::now();
  // One write in flight at a time; surfacing the previous write's error
  // here keeps the Status chain unbroken in async mode.
  AMNESIA_RETURN_NOT_OK(WaitIdle());

  TableSnapshot snapshot = [&] {
    obs::TraceScope capture_trace(
        "checkpoint.capture",
        obs::EngineMetrics::Get().checkpoint_capture_ns);
    return snapshots_.Capture(shards, ingest_cursor, tiers);
  }();
  const uint64_t id = next_checkpoint_id_++;

  if (!shared_->options.async) {
    const Status status =
        WriteSnapshot(shared_, std::move(snapshot), covered_lsn, id);
    std::lock_guard<std::mutex> lock(shared_->mu);
    shared_->stats.caller_stall_ms += MillisSince(start);
    return status;
  }

  inflight_ = std::thread([shared = shared_, snapshot = std::move(snapshot),
                           covered_lsn, id]() mutable {
    Status status = WriteSnapshot(shared, std::move(snapshot), covered_lsn, id);
    std::lock_guard<std::mutex> lock(shared->mu);
    shared->inflight_status = std::move(status);
  });
  std::lock_guard<std::mutex> lock(shared_->mu);
  shared_->stats.caller_stall_ms += MillisSince(start);
  return Status::OK();
}

Status BackgroundCheckpointer::Checkpoint(const ShardedTable& table,
                                          uint64_t covered_lsn,
                                          const TierSet& tiers) {
  std::vector<const Table*> shards;
  shards.reserve(table.num_shards());
  for (uint32_t s = 0; s < table.num_shards(); ++s) {
    shards.push_back(&table.shard(s).table());
  }
  return Checkpoint(shards, table.ingest_cursor(), covered_lsn, tiers);
}

Status BackgroundCheckpointer::Checkpoint(const Table& table,
                                          uint64_t covered_lsn,
                                          const TierSet& tiers) {
  return Checkpoint({&table}, table.lifetime_inserted(), covered_lsn, tiers);
}

// ---------------------------------------------------------------- Recover

namespace {

/// Reads one referenced blob and verifies its size and checksum. Any
/// mismatch fails the whole manifest so recovery can fall back.
StatusOr<std::vector<uint8_t>> ReadVerifiedBlob(const std::string& dir,
                                                const std::string& filename,
                                                uint64_t size,
                                                uint32_t crc32) {
  AMNESIA_ASSIGN_OR_RETURN(std::vector<uint8_t> blob,
                           ReadBytesFile(dir + "/" + filename));
  if (blob.size() != size || ckpt::Crc32(blob) != crc32) {
    return Status::InvalidArgument("blob '" + filename +
                                   "' fails size/checksum verification");
  }
  return blob;
}

/// Restores every shard a manifest references. Mapped shards (v3
/// manifests) re-map their partition files from the recorded storage
/// directory instead of deserializing the sealed payload; a torn or
/// missing partition file fails the manifest so recovery falls back.
Status RestoreManifestShards(const std::string& dir, const Manifest& manifest,
                             std::vector<Table>* out) {
  out->clear();
  out->reserve(manifest.shards.size());
  for (const ManifestShard& entry : manifest.shards) {
    AMNESIA_ASSIGN_OR_RETURN(
        std::vector<uint8_t> blob,
        ReadVerifiedBlob(dir, entry.filename, entry.size, entry.crc32));
    AMNESIA_ASSIGN_OR_RETURN(Table table,
                             RestoreTableWithStorage(blob, entry.storage_dir));
    out->push_back(std::move(table));
  }
  return Status::OK();
}

/// Restores the tier blobs a v2 manifest references (v1 manifests have
/// none and leave the optionals empty).
Status RestoreManifestTiers(const std::string& dir, const Manifest& manifest,
                            RecoveredState* state) {
  state->cold.reset();
  state->summaries.reset();
  if (manifest.cold.present()) {
    AMNESIA_ASSIGN_OR_RETURN(
        std::vector<uint8_t> blob,
        ReadVerifiedBlob(dir, manifest.cold.filename, manifest.cold.size,
                         manifest.cold.crc32));
    AMNESIA_ASSIGN_OR_RETURN(ColdStore cold, RestoreColdStore(blob));
    state->cold.emplace(std::move(cold));
  }
  if (manifest.summary.present()) {
    AMNESIA_ASSIGN_OR_RETURN(
        std::vector<uint8_t> blob,
        ReadVerifiedBlob(dir, manifest.summary.filename, manifest.summary.size,
                         manifest.summary.crc32));
    AMNESIA_ASSIGN_OR_RETURN(SummaryStore summaries,
                             RestoreSummaryStore(blob));
    state->summaries.emplace(std::move(summaries));
  }
  return Status::OK();
}

}  // namespace

StatusOr<RecoveredState> Recover(const std::string& dir,
                                 const std::string& log_path,
                                 const ReplaySinks& sinks) {
  // Candidate manifests, newest first; the CURRENT pointer is a hint that
  // goes first when it parses.
  std::vector<uint64_t> ids = ListManifestIds(dir);
  std::sort(ids.begin(), ids.end(), std::greater<uint64_t>());
  {
    auto current = ReadBytesFile(dir + "/" + kCurrentName);
    if (current.ok()) {
      const std::string name(current.value().begin(), current.value().end());
      const size_t prefix_len = std::strlen(kManifestPrefix);
      if (name.rfind(kManifestPrefix, 0) == 0) {
        const uint64_t id =
            std::strtoull(name.substr(prefix_len).c_str(), nullptr, 10);
        auto it = std::find(ids.begin(), ids.end(), id);
        if (it != ids.end()) std::rotate(ids.begin(), it, it + 1);
      }
    }
  }
  if (ids.empty()) {
    return Status::NotFound("no checkpoint manifest in '" + dir + "'");
  }

  // The log is shared by every candidate; read it once. An absent log
  // file means no events were recorded after the snapshot (restore it
  // as-is); any other read failure is a real I/O error and recovery must
  // not silently pretend the log was empty.
  EventLogContents log;
  bool log_present = false;
  if (!log_path.empty()) {
    auto read = ReadAnyEventLogContents(log_path);
    if (read.ok()) {
      log = std::move(read).value();
      log_present = true;
    } else if (read.status().code() != StatusCode::kNotFound) {
      return read.status();
    }
  }

  Status last_error = Status::NotFound("no usable checkpoint manifest");
  for (uint64_t id : ids) {
    auto bytes = ReadBytesFile(dir + "/" + ManifestName(id));
    if (!bytes.ok()) {
      last_error = bytes.status();
      continue;
    }
    auto manifest = DecodeManifest(bytes.value());
    if (!manifest.ok()) {
      last_error = manifest.status();
      continue;
    }
    if (log_present && manifest->covered_lsn > log.next_lsn()) {
      // A log that exists but is shorter than the manifest's coverage has
      // lost records; an older manifest covers a shorter prefix. (With no
      // log file at all, the snapshot alone is the complete state as of
      // its covered LSN.)
      last_error = Status::InvalidArgument(
          "event log shorter than manifest coverage");
      continue;
    }
    if (log_present && manifest->covered_lsn < log.base_lsn) {
      // The log was compacted past this manifest's coverage: the events
      // between covered_lsn and the base are gone, so this (old, normally
      // GC'd) manifest cannot be replayed forward. A newer retained
      // manifest covers at least the base.
      last_error = Status::InvalidArgument(
          "event log truncated past manifest coverage");
      continue;
    }
    RecoveredState state;
    Status restored = RestoreManifestShards(dir, *manifest, &state.shards);
    if (!restored.ok()) {
      last_error = std::move(restored);
      continue;
    }
    restored = RestoreManifestTiers(dir, *manifest, &state);
    if (!restored.ok()) {
      last_error = std::move(restored);
      continue;
    }
    state.ingest_cursor = manifest->ingest_cursor;
    state.checkpoint_id = manifest->id;
    state.covered_lsn = manifest->covered_lsn;
    // Tail forget events re-route into the tiers restored from THIS
    // manifest; caller sinks only stand in for tiers it does not cover.
    ReplaySinks effective = sinks;
    if (state.cold) effective.cold = &*state.cold;
    if (state.summaries) effective.summaries = &*state.summaries;
    auto replayed = ReplayEvents(
        log.events, manifest->covered_lsn - log.base_lsn, &state.shards,
        &state.ingest_cursor, effective);
    if (!replayed.ok()) {
      last_error = replayed.status();
      continue;
    }
    state.events_replayed = replayed.value();
    return state;
  }
  return last_error;
}

StatusOr<ShardedTable> RecoveredToShardedTable(RecoveredState state) {
  return ShardedTable::FromShards(std::move(state.shards),
                                  state.ingest_cursor);
}

Status CollectCheckpointGarbage(const std::string& dir, uint32_t retain,
                                EventLogBase* log) {
  if (retain == 0) return Status::OK();
  CheckpointerOptions options;
  options.dir = dir;
  options.retain = retain;
  options.log = log;
  GcResult gc;
  return RunRetentionGc(options, &gc);
}

}  // namespace amnesia
