// Copyright 2026 The AmnesiaDB Authors

#include "durability/checkpointer.h"

#include <dirent.h>
#include <sys/stat.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <utility>

#include "storage/checkpoint.h"
#include "storage/checkpoint_io.h"

namespace amnesia {

namespace {

constexpr uint32_t kManifestMagic = 0x414D4D46;  // "AMMF"
constexpr uint32_t kManifestVersion = 1;
constexpr const char* kManifestPrefix = "MANIFEST-";
constexpr const char* kCurrentName = "CURRENT";

double MillisSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

std::string ManifestName(uint64_t id) {
  return kManifestPrefix + std::to_string(id);
}

std::string BlobName(uint64_t checkpoint_id, size_t shard) {
  return "ckpt-" + std::to_string(checkpoint_id) + "-shard-" +
         std::to_string(shard) + ".blob";
}

/// Returns the ids of every MANIFEST-<id> file in `dir`, unsorted.
std::vector<uint64_t> ListManifestIds(const std::string& dir) {
  std::vector<uint64_t> ids;
  DIR* d = opendir(dir.c_str());
  if (d == nullptr) return ids;
  const size_t prefix_len = std::strlen(kManifestPrefix);
  while (dirent* entry = readdir(d)) {
    const std::string name = entry->d_name;
    if (name.rfind(kManifestPrefix, 0) != 0) continue;
    const std::string suffix = name.substr(prefix_len);
    if (suffix.empty() ||
        suffix.find_first_not_of("0123456789") != std::string::npos) {
      continue;
    }
    ids.push_back(std::strtoull(suffix.c_str(), nullptr, 10));
  }
  closedir(d);
  return ids;
}

}  // namespace

std::vector<uint8_t> EncodeManifest(const Manifest& manifest) {
  std::vector<uint8_t> out;
  ckpt::Writer w(&out);
  w.U32(kManifestMagic);
  w.U32(kManifestVersion);
  w.U64(manifest.id);
  w.U64(manifest.covered_lsn);
  w.U64(manifest.ingest_cursor);
  w.U64(manifest.shards.size());
  for (const ManifestShard& shard : manifest.shards) {
    w.U64(shard.epoch);
    w.String(shard.filename);
    w.U64(shard.size);
    w.U32(shard.crc32);
  }
  w.U32(ckpt::Crc32(out));
  return out;
}

StatusOr<Manifest> DecodeManifest(const std::vector<uint8_t>& buffer) {
  if (buffer.size() < sizeof(uint32_t)) {
    return Status::InvalidArgument("manifest truncated");
  }
  uint32_t stored_crc = 0;
  std::memcpy(&stored_crc, buffer.data() + buffer.size() - sizeof(stored_crc),
              sizeof(stored_crc));
  if (ckpt::Crc32(buffer.data(), buffer.size() - sizeof(stored_crc)) !=
      stored_crc) {
    return Status::InvalidArgument("manifest checksum mismatch (truncated "
                                   "or corrupt)");
  }

  ckpt::Reader r(buffer);
  uint32_t magic = 0, version = 0;
  AMNESIA_RETURN_NOT_OK(r.U32(&magic));
  if (magic != kManifestMagic) {
    return Status::InvalidArgument("not an AmnesiaDB checkpoint manifest");
  }
  AMNESIA_RETURN_NOT_OK(r.U32(&version));
  if (version != kManifestVersion) {
    return Status::FailedPrecondition("unsupported manifest version " +
                                      std::to_string(version));
  }
  Manifest manifest;
  AMNESIA_RETURN_NOT_OK(r.U64(&manifest.id));
  AMNESIA_RETURN_NOT_OK(r.U64(&manifest.covered_lsn));
  AMNESIA_RETURN_NOT_OK(r.U64(&manifest.ingest_cursor));
  uint64_t shards = 0;
  AMNESIA_RETURN_NOT_OK(r.U64(&shards));
  if (shards == 0 || shards > kMaxShards) {
    return Status::InvalidArgument("implausible manifest shard count");
  }
  manifest.shards.resize(static_cast<size_t>(shards));
  for (ManifestShard& shard : manifest.shards) {
    AMNESIA_RETURN_NOT_OK(r.U64(&shard.epoch));
    AMNESIA_RETURN_NOT_OK(r.String(&shard.filename));
    AMNESIA_RETURN_NOT_OK(r.U64(&shard.size));
    AMNESIA_RETURN_NOT_OK(r.U32(&shard.crc32));
  }
  return manifest;
}

Status ClearCheckpointArtifacts(const std::string& dir) {
  DIR* d = opendir(dir.c_str());
  if (d == nullptr) return Status::OK();  // nothing to clear
  std::vector<std::string> doomed;
  while (dirent* entry = readdir(d)) {
    const std::string name = entry->d_name;
    const bool is_blob = name.rfind("ckpt-", 0) == 0 &&
                         name.size() > 5 &&
                         name.rfind(".blob") == name.size() - 5;
    if (name.rfind(kManifestPrefix, 0) == 0 || name == kCurrentName ||
        is_blob) {
      doomed.push_back(dir + "/" + name);
    }
  }
  closedir(d);
  for (const std::string& path : doomed) {
    if (std::remove(path.c_str()) != 0) {
      return Status::Internal("cannot remove stale checkpoint artifact '" +
                              path + "'");
    }
  }
  return Status::OK();
}

Status EnsureDir(const std::string& dir) {
  struct stat st;
  if (stat(dir.c_str(), &st) == 0) {
    if (!S_ISDIR(st.st_mode)) {
      return Status::InvalidArgument("'" + dir + "' exists but is not a "
                                     "directory");
    }
    return Status::OK();
  }
  if (mkdir(dir.c_str(), 0755) != 0) {
    return Status::Internal("cannot create checkpoint directory '" + dir +
                            "'");
  }
  return Status::OK();
}

// -------------------------------------------------- BackgroundCheckpointer

StatusOr<BackgroundCheckpointer> BackgroundCheckpointer::Make(
    const CheckpointerOptions& options) {
  if (options.dir.empty()) {
    return Status::InvalidArgument("checkpointer needs a directory");
  }
  AMNESIA_RETURN_NOT_OK(EnsureDir(options.dir));
  BackgroundCheckpointer out(options);
  // Resume the id sequence past manifests from a previous incarnation so
  // blob names never collide across a crash.
  const std::vector<uint64_t> ids = ListManifestIds(options.dir);
  for (uint64_t id : ids) {
    out.next_checkpoint_id_ = std::max(out.next_checkpoint_id_, id + 1);
  }
  return out;
}

BackgroundCheckpointer::~BackgroundCheckpointer() {
  if (inflight_.joinable()) inflight_.join();
}

BackgroundCheckpointer::BackgroundCheckpointer(
    BackgroundCheckpointer&& other) noexcept {
  // A background write captures the source's address; settle it before
  // stealing state. Make() returns before any checkpoint, so the usual
  // StatusOr move never waits here.
  if (other.inflight_.joinable()) other.inflight_.join();
  options_ = std::move(other.options_);
  snapshots_ = std::move(other.snapshots_);
  stats_ = other.stats_;
  next_checkpoint_id_ = other.next_checkpoint_id_;
  durable_blobs_ = std::move(other.durable_blobs_);
  inflight_status_ = std::move(other.inflight_status_);
}

Status BackgroundCheckpointer::WaitIdle() {
  if (inflight_.joinable()) inflight_.join();
  std::lock_guard<std::mutex> lock(inflight_mu_);
  Status out = std::move(inflight_status_);
  inflight_status_ = Status::OK();
  return out;
}

Status BackgroundCheckpointer::WriteSnapshot(TableSnapshot snapshot,
                                             uint64_t covered_lsn,
                                             uint64_t checkpoint_id) {
  const auto start = std::chrono::steady_clock::now();
  const size_t num_shards = snapshot.shards.size();
  durable_blobs_.resize(num_shards);

  Manifest manifest;
  manifest.id = checkpoint_id;
  manifest.covered_lsn = covered_lsn;
  manifest.ingest_cursor = snapshot.ingest_cursor;
  manifest.shards.resize(num_shards);

  // Serialize the shards whose epoch advanced, concurrently on the pool
  // when one is given. The writing thread is never a pool worker, so
  // waiting on the futures is safe.
  std::vector<size_t> to_write;
  for (size_t s = 0; s < num_shards; ++s) {
    if (!durable_blobs_[s].filename.empty() &&
        durable_blobs_[s].epoch == snapshot.shards[s]->epoch) {
      manifest.shards[s] = durable_blobs_[s];
      ++stats_.shards_skipped;
    } else {
      to_write.push_back(s);
    }
  }
  const std::vector<std::vector<uint8_t>> blobs = ckpt::SerializeBlobs(
      options_.pool, num_shards, to_write, [&snapshot](size_t s) {
        return SerializeShardSnapshot(*snapshot.shards[s]);
      });

  for (size_t s : to_write) {
    ManifestShard entry;
    entry.epoch = snapshot.shards[s]->epoch;
    entry.filename = BlobName(checkpoint_id, s);
    entry.size = blobs[s].size();
    entry.crc32 = ckpt::Crc32(blobs[s]);
    AMNESIA_RETURN_NOT_OK(
        WriteBytesFileAtomic(blobs[s], options_.dir + "/" + entry.filename));
    stats_.bytes_written += blobs[s].size();
    ++stats_.shards_written;
    manifest.shards[s] = entry;
    durable_blobs_[s] = std::move(entry);
  }

  // Commit point: the manifest (then CURRENT) renames into place.
  const std::vector<uint8_t> manifest_bytes = EncodeManifest(manifest);
  AMNESIA_RETURN_NOT_OK(WriteBytesFileAtomic(
      manifest_bytes, options_.dir + "/" + ManifestName(checkpoint_id)));
  stats_.bytes_written += manifest_bytes.size();
  const std::string current = ManifestName(checkpoint_id);
  AMNESIA_RETURN_NOT_OK(WriteBytesFileAtomic(
      std::vector<uint8_t>(current.begin(), current.end()),
      options_.dir + "/" + kCurrentName));
  ++stats_.checkpoints;
  stats_.write_ms += MillisSince(start);
  return Status::OK();
}

Status BackgroundCheckpointer::Checkpoint(
    const std::vector<const Table*>& shards, uint64_t ingest_cursor,
    uint64_t covered_lsn) {
  const auto start = std::chrono::steady_clock::now();
  // One write in flight at a time; surfacing the previous write's error
  // here keeps the Status chain unbroken in async mode.
  AMNESIA_RETURN_NOT_OK(WaitIdle());

  TableSnapshot snapshot = snapshots_.Capture(shards, ingest_cursor);
  const uint64_t id = next_checkpoint_id_++;

  if (!options_.async) {
    const Status status = WriteSnapshot(std::move(snapshot), covered_lsn, id);
    stats_.caller_stall_ms += MillisSince(start);
    return status;
  }

  inflight_ = std::thread([this, snapshot = std::move(snapshot), covered_lsn,
                           id]() mutable {
    Status status = WriteSnapshot(std::move(snapshot), covered_lsn, id);
    std::lock_guard<std::mutex> lock(inflight_mu_);
    inflight_status_ = std::move(status);
  });
  stats_.caller_stall_ms += MillisSince(start);
  return Status::OK();
}

Status BackgroundCheckpointer::Checkpoint(const ShardedTable& table,
                                          uint64_t covered_lsn) {
  std::vector<const Table*> shards;
  shards.reserve(table.num_shards());
  for (uint32_t s = 0; s < table.num_shards(); ++s) {
    shards.push_back(&table.shard(s).table());
  }
  return Checkpoint(shards, table.ingest_cursor(), covered_lsn);
}

Status BackgroundCheckpointer::Checkpoint(const Table& table,
                                          uint64_t covered_lsn) {
  return Checkpoint({&table}, table.lifetime_inserted(), covered_lsn);
}

// ---------------------------------------------------------------- Recover

namespace {

/// Restores every shard a manifest references, verifying sizes and
/// checksums. Any mismatch fails the whole manifest so recovery can fall
/// back to an older one.
Status RestoreManifestShards(const std::string& dir, const Manifest& manifest,
                             std::vector<Table>* out) {
  out->clear();
  out->reserve(manifest.shards.size());
  for (const ManifestShard& entry : manifest.shards) {
    AMNESIA_ASSIGN_OR_RETURN(std::vector<uint8_t> blob,
                             ReadBytesFile(dir + "/" + entry.filename));
    if (blob.size() != entry.size || ckpt::Crc32(blob) != entry.crc32) {
      return Status::InvalidArgument("blob '" + entry.filename +
                                     "' fails size/checksum verification");
    }
    AMNESIA_ASSIGN_OR_RETURN(Table table, RestoreTable(blob));
    out->push_back(std::move(table));
  }
  return Status::OK();
}

}  // namespace

StatusOr<RecoveredState> Recover(const std::string& dir,
                                 const std::string& log_path,
                                 const ReplaySinks& sinks) {
  // Candidate manifests, newest first; the CURRENT pointer is a hint that
  // goes first when it parses.
  std::vector<uint64_t> ids = ListManifestIds(dir);
  std::sort(ids.begin(), ids.end(), std::greater<uint64_t>());
  {
    auto current = ReadBytesFile(dir + "/" + kCurrentName);
    if (current.ok()) {
      const std::string name(current.value().begin(), current.value().end());
      const size_t prefix_len = std::strlen(kManifestPrefix);
      if (name.rfind(kManifestPrefix, 0) == 0) {
        const uint64_t id =
            std::strtoull(name.substr(prefix_len).c_str(), nullptr, 10);
        auto it = std::find(ids.begin(), ids.end(), id);
        if (it != ids.end()) std::rotate(ids.begin(), it, it + 1);
      }
    }
  }
  if (ids.empty()) {
    return Status::NotFound("no checkpoint manifest in '" + dir + "'");
  }

  // The log is shared by every candidate; read it once. An absent log
  // file means no events were recorded after the snapshot (restore it
  // as-is); any other read failure is a real I/O error and recovery must
  // not silently pretend the log was empty.
  std::vector<Event> events;
  bool log_present = false;
  if (!log_path.empty()) {
    auto read = ReadEventLogFile(log_path);
    if (read.ok()) {
      events = std::move(read).value();
      log_present = true;
    } else if (read.status().code() != StatusCode::kNotFound) {
      return read.status();
    }
  }

  Status last_error = Status::NotFound("no usable checkpoint manifest");
  for (uint64_t id : ids) {
    auto bytes = ReadBytesFile(dir + "/" + ManifestName(id));
    if (!bytes.ok()) {
      last_error = bytes.status();
      continue;
    }
    auto manifest = DecodeManifest(bytes.value());
    if (!manifest.ok()) {
      last_error = manifest.status();
      continue;
    }
    if (log_present && manifest->covered_lsn > events.size()) {
      // A log that exists but is shorter than the manifest's coverage has
      // lost records; an older manifest covers a shorter prefix. (With no
      // log file at all, the snapshot alone is the complete state as of
      // its covered LSN.)
      last_error = Status::InvalidArgument(
          "event log shorter than manifest coverage");
      continue;
    }
    RecoveredState state;
    Status restored = RestoreManifestShards(dir, *manifest, &state.shards);
    if (!restored.ok()) {
      last_error = std::move(restored);
      continue;
    }
    state.ingest_cursor = manifest->ingest_cursor;
    state.checkpoint_id = manifest->id;
    state.covered_lsn = manifest->covered_lsn;
    auto replayed = ReplayEvents(events, manifest->covered_lsn,
                                 &state.shards, &state.ingest_cursor, sinks);
    if (!replayed.ok()) {
      last_error = replayed.status();
      continue;
    }
    state.events_replayed = replayed.value();
    return state;
  }
  return last_error;
}

StatusOr<ShardedTable> RecoveredToShardedTable(RecoveredState state) {
  return ShardedTable::FromShards(std::move(state.shards),
                                  state.ingest_cursor);
}

}  // namespace amnesia
