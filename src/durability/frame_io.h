// Copyright 2026 The AmnesiaDB Authors
//
// Shared [u32 length][u32 crc32][payload] record framing for the event-log
// family. EventLog (single rewrite-compacted file) and SegmentedEventLog
// (segment files unlinked whole) both write exactly these frames, which is
// what keeps the two formats byte-compatible at the record level: the
// migration split and the equivalence tests compare payload-for-payload.
//
// Reader semantics are the WAL standard: a short header, a short payload,
// an implausible length or a CRC mismatch all mean "the valid prefix ends
// here" — the expected artifact of a crash mid-write, never an error.

#ifndef AMNESIA_DURABILITY_FRAME_IO_H_
#define AMNESIA_DURABILITY_FRAME_IO_H_

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "common/status.h"
#include "storage/checkpoint_io.h"

namespace amnesia {
namespace wal {

/// Frame header: u32 payload length + u32 payload CRC-32.
constexpr size_t kFrameHeaderSize = 8;
/// Lengths beyond this are treated as corruption (no event comes close).
constexpr uint32_t kMaxFramePayload = 64u << 20;

/// \brief Writes one frame; the caller decides when to flush.
inline Status WriteFrame(std::FILE* file, const std::vector<uint8_t>& payload,
                         const std::string& path) {
  std::vector<uint8_t> frame;
  ckpt::Writer w(&frame);
  w.U32(static_cast<uint32_t>(payload.size()));
  w.U32(ckpt::Crc32(payload));
  frame.insert(frame.end(), payload.begin(), payload.end());
  if (std::fwrite(frame.data(), 1, frame.size(), file) != frame.size()) {
    return Status::Internal("event log write failed on '" + path + "'");
  }
  return Status::OK();
}

/// \brief Reads the next frame at the current file position. Returns true
/// and fills `payload` on success; returns false at a clean EOF, a torn
/// frame or a CRC mismatch (the file position past the valid prefix is
/// unspecified — readers stop here).
inline bool ReadFrame(std::FILE* file, std::vector<uint8_t>* payload) {
  uint8_t header[kFrameHeaderSize];
  if (std::fread(header, 1, sizeof(header), file) != sizeof(header)) {
    return false;  // clean EOF or torn frame header
  }
  uint32_t length = 0, crc = 0;
  std::memcpy(&length, header, sizeof(length));
  std::memcpy(&crc, header + 4, sizeof(crc));
  if (length > kMaxFramePayload) return false;  // corrupt length
  payload->resize(length);
  if (std::fread(payload->data(), 1, length, file) != length) return false;
  return ckpt::Crc32(*payload) == crc;
}

}  // namespace wal
}  // namespace amnesia

#endif  // AMNESIA_DURABILITY_FRAME_IO_H_
