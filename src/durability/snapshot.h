// Copyright 2026 The AmnesiaDB Authors
//
// Versioned per-shard snapshots: the cheap, caller-thread half of an
// asynchronous checkpoint. Capture copies a shard's state into immutable
// structures the background writer serializes later, so ingest and forget
// passes proceed the moment Capture() returns — the foreground never
// waits on serialization or I/O.
//
// Three levels of work avoidance keep capture cheap:
//  1. Shard skip: a shard whose durability epoch (version + access epoch)
//     is unchanged since the previous capture reuses the previous
//     ShardSnapshot wholesale (shared_ptr, zero copies). The checkpoint
//     writer likewise skips re-writing its blob.
//  2. Copy-on-write column tails: when a shard only appended since the
//     last capture (no compaction, no scrubs), the previously captured
//     payload/tick/batch chunks are shared and only the new tail rows are
//     copied.
//  3. The active-row bitmap and access counts are small flat copies taken
//     fresh on every (re)capture: forgets and access bumps mutate them in
//     place, and they are an order of magnitude smaller than the payload.
//
// SerializeShardSnapshot emits exactly the bytes CheckpointTable(live
// table) would have produced at capture time, so RestoreTable reads blobs
// from either path and equivalence is testable byte-for-byte.

#ifndef AMNESIA_DURABILITY_SNAPSHOT_H_
#define AMNESIA_DURABILITY_SNAPSHOT_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "storage/cold_store.h"
#include "storage/schema.h"
#include "storage/sharded_table.h"
#include "storage/summary_store.h"
#include "storage/table.h"

namespace amnesia {

/// \brief The forgetting tiers a checkpoint covers alongside the table.
/// Null members are simply absent from the capture (and from the
/// manifest): runs whose backend never routes tuples into a tier need not
/// checkpoint one.
struct TierSet {
  const ColdStore* cold = nullptr;
  const SummaryStore* summaries = nullptr;
};

/// \brief An immutable, contiguous run of captured rows. Chunks are
/// shared between successive snapshots of an append-only shard.
struct SnapshotChunk {
  /// Column-major payload: columns[c][i] is row (base + i) of column c.
  std::vector<std::vector<Value>> columns;
  std::vector<Tick> ticks;
  std::vector<BatchId> batches;

  /// Returns the number of rows the chunk spans.
  uint64_t size() const { return ticks.size(); }
};

/// \brief A consistent copy of one shard at a capture point.
class ShardSnapshot {
 public:
  /// Durability epoch at capture: Table::version() + Table::access_epoch().
  uint64_t epoch = 0;
  uint64_t num_rows = 0;
  Schema schema;
  std::vector<Value> min_seen;
  std::vector<Value> max_seen;
  Tick next_tick = 0;
  uint64_t lifetime_forgotten = 0;
  BatchId current_batch = 0;
  /// Payload in capture order; chunk row ranges concatenate to
  /// [0, num_rows). Empty for mapped shards (sealed payload lives in the
  /// partition files; only `tail_columns` below travels in the blob).
  std::vector<std::shared_ptr<const SnapshotChunk>> chunks;
  /// Per-row access counts (fresh copy each capture).
  std::vector<uint64_t> access_counts;
  /// Active-row bitmap (fresh copy each capture).
  std::vector<bool> active;

  /// \name Mapped-shard capture (StorageBackend::kMapped only).
  /// A mapped shard's blob records partition metadata plus the unsealed
  /// tail; recovery re-maps the partition files instead of deserializing
  /// the sealed payload. Ticks are not captured: mapped shards never
  /// compact, so row r's tick is always next_tick - num_rows + r.
  /// @{
  bool mapped = false;
  std::string storage_dir;      ///< The shard's partition directory.
  uint64_t partition_rows = 0;  ///< Rows per sealed partition.
  std::vector<PartitionMeta> partitions;
  /// Per-column payload of rows [partitions.size() * partition_rows,
  /// num_rows) — the unsealed tail.
  std::vector<std::vector<Value>> tail_columns;
  /// Per-row insertion batches, full length (fresh copy each capture).
  std::vector<BatchId> batches;
  /// @}
};

/// \brief One capture of a whole (possibly sharded) table, plus the
/// forgetting tiers taken in the same pass — the atomic unit a manifest
/// commits under one covered LSN.
struct TableSnapshot {
  /// Global round-robin ingest cursor at capture.
  uint64_t ingest_cursor = 0;
  std::vector<std::shared_ptr<const ShardSnapshot>> shards;
  /// Tier copies at the same capture point (null when not captured).
  /// Flat copies, not versioned: tier contents are bounded by forgotten
  /// tuples and dwarfed by the table payload; the checkpoint writer still
  /// skips re-writing a tier blob whose bytes did not change.
  std::shared_ptr<const ColdStore> cold;
  std::shared_ptr<const SummaryStore> summaries;
};

/// \brief Work accounting of the most recent Capture call.
struct CaptureStats {
  uint64_t shards_recaptured = 0;  ///< Shards copied (full or tail).
  uint64_t shards_reused = 0;      ///< Shards skipped via unchanged epoch.
  uint64_t chunks_reused = 0;      ///< Payload chunks shared, not copied.
  uint64_t rows_copied = 0;        ///< Rows whose payload was copied.
};

/// \brief Serializes a snapshot to the CheckpointTable byte format
/// (restorable with RestoreTable).
std::vector<uint8_t> SerializeShardSnapshot(const ShardSnapshot& snapshot);

/// \brief Captures per-shard versioned snapshots, reusing state across
/// calls. One manager per table; captures must not run concurrently with
/// mutations of that table (the simulator and benches capture between
/// rounds).
class SnapshotManager {
 public:
  /// Returns the durability epoch of a table: advances on every mutation
  /// that can change checkpoint bytes, including access bumps.
  static uint64_t EpochOf(const Table& table) {
    return table.version() + table.access_epoch();
  }

  /// Captures all shards (given in shard order, as for
  /// ShardedTable::FromShards) plus the forgetting tiers in one pass, so
  /// table and tiers commit under the same covered LSN. `ingest_cursor`
  /// is the global round-robin position at capture.
  TableSnapshot Capture(const std::vector<const Table*>& shards,
                        uint64_t ingest_cursor,
                        const TierSet& tiers = TierSet());

  /// Convenience overloads for the two table flavors.
  TableSnapshot Capture(const ShardedTable& table,
                        const TierSet& tiers = TierSet());
  TableSnapshot Capture(const Table& table, const TierSet& tiers = TierSet());

  /// Returns the work accounting of the most recent Capture call.
  const CaptureStats& last_stats() const { return last_stats_; }

 private:
  /// What the manager remembers about a shard between captures.
  struct ShardState {
    uint64_t epoch = 0;
    uint64_t num_rows = 0;
    Tick next_tick = 0;
    uint64_t scrub_epoch = 0;
    std::shared_ptr<const ShardSnapshot> snapshot;
  };

  std::shared_ptr<const ShardSnapshot> CaptureShard(const Table& table,
                                                    ShardState* state);

  std::vector<ShardState> states_;
  CaptureStats last_stats_;
};

}  // namespace amnesia

#endif  // AMNESIA_DURABILITY_SNAPSHOT_H_
