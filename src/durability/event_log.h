// Copyright 2026 The AmnesiaDB Authors
//
// Physical redo log for the durability subsystem. Between two checkpoints
// every table mutation — batched appends, forget-pass outcomes (forget /
// scrub / compaction), revives and access bumps — is recorded as one
// Event; replaying the tail of the log on top of the newest snapshot
// reconstructs the exact pre-crash state. The shape follows KERI's
// append-only key-event-log design (PAPERS.md): an event log plus periodic
// snapshots gives cheap incremental durability and deterministic replay.
//
// The log is *physical*, not logical: it records which rows were
// forgotten, not which policy selected them, so replay needs no policy,
// RNG or oracle state. Events carry (shard, local row) addressing; events
// on different shards commute, so the shard-parallel forget passes may
// interleave their appends — per-shard order is all replay relies on.

#ifndef AMNESIA_DURABILITY_EVENT_LOG_H_
#define AMNESIA_DURABILITY_EVENT_LOG_H_

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.h"
#include "storage/cold_store.h"
#include "storage/sharded_table.h"
#include "storage/summary_store.h"
#include "storage/types.h"

namespace amnesia {

/// \brief What a durability event records.
enum class EventKind : uint8_t {
  /// A new update batch started (Table/ShardedTable::BeginBatch).
  kBeginBatch = 1,
  /// Rows were appended through the global round-robin ingest path. The
  /// event carries the column-major payload; `shard` is unused.
  kAppendRows = 2,
  /// One row was forgotten. `backend` records the forgetting backend so
  /// replay can re-route the tuple into a cold/summary tier.
  kForget = 3,
  /// A forgotten row's payload was scrubbed to `value`.
  kScrub = 4,
  /// One shard ran physical compaction (deterministic given its state).
  kCompact = 5,
  /// A forgotten row was revived (explicit cold-storage recovery).
  kRevive = 6,
  /// A row's access count was bumped (rot-policy feedback).
  kAccess = 7,
  /// One shard dropped a whole sealed partition (mapped storage's O(1)
  /// forget): `row` is the partition index, `value` the partition's row
  /// count. Journaled after the partition directory's fsync'd rename to
  /// its `.dropped` name, so whichever of {rename, this record} a crash
  /// keeps, recovery is consistent.
  kDropPartition = 8,
};

/// \brief One redo record.
struct Event {
  EventKind kind = EventKind::kBeginBatch;
  /// Shard the event applies to (0 for unsharded tables; unused by
  /// kAppendRows, which round-robins globally).
  uint32_t shard = 0;
  /// Shard-local row id (kForget / kScrub / kRevive / kAccess) or
  /// partition index (kDropPartition).
  RowId row = 0;
  /// Scrub value (kScrub) or partition row count (kDropPartition).
  Value value = 0;
  /// Forgetting backend that processed the row (kForget), as the
  /// underlying BackendKind integer.
  uint8_t backend = 0;
  /// Column the backend preserved (kForget with cold/summary backends).
  uint32_t payload_col = 0;
  /// Column-major appended payload (kAppendRows).
  std::vector<std::vector<Value>> columns;
};

/// \brief Serializes one event into a self-delimiting byte payload.
std::vector<uint8_t> EncodeEvent(const Event& event);

/// \brief Decodes one event payload (InvalidArgument on corruption).
StatusOr<Event> DecodeEvent(const std::vector<uint8_t>& payload);

/// \brief Where forget events are re-routed during replay. Null members
/// simply skip the corresponding tier (the table state is always redone).
struct ReplaySinks {
  ColdStore* cold = nullptr;
  SummaryStore* summaries = nullptr;
};

/// \brief Applies one event to a recovering table. `tables` are the
/// restored shards in shard order; `ingest_cursor` is the global
/// round-robin position (rows ever appended) and is advanced by
/// kAppendRows events.
Status ReplayEvent(const Event& event, std::vector<Table>* tables,
                   uint64_t* ingest_cursor,
                   const ReplaySinks& sinks = ReplaySinks());

/// \brief Replays events[begin..] in order. Returns the number applied.
StatusOr<uint64_t> ReplayEvents(const std::vector<Event>& events,
                                uint64_t begin, std::vector<Table>* tables,
                                uint64_t* ingest_cursor,
                                const ReplaySinks& sinks = ReplaySinks());

/// \brief Minimal interface mutators emit events through — lets
/// amnesia/ controllers journal forget outcomes without depending on the
/// file-backed log.
class EventSink {
 public:
  virtual ~EventSink() = default;
  /// Appends one event. Thread-safe: shard-parallel forget passes emit
  /// concurrently.
  virtual Status Append(const Event& event) = 0;
  /// Makes everything appended so far durable (write-ahead barrier).
  /// Mutators whose side effects outlive the process — scrubbing a mapped
  /// partition file, dropping a partition — flush their journal records
  /// BEFORE applying the effect, so a crash can never leave an effect on
  /// disk whose record was lost. Default: no-op (in-memory sinks).
  virtual Status Flush() { return Status::OK(); }
};

/// \brief On-disk layout of a physical event log.
enum class LogFormat : uint8_t {
  /// One file, compacted by atomically rewriting the retained suffix
  /// behind a base-LSN marker frame (EventLog). Simple, but the rewrite
  /// is O(retained events) and blocks appenders for its duration.
  kSingleFile = 0,
  /// Fixed-size segment files, compacted by unlinking sealed segments
  /// wholly below the truncation LSN (SegmentedEventLog,
  /// durability/log_segments.h). O(1) per checkpoint and concurrent with
  /// appends.
  kSegmented = 1,
};

/// \brief When appended frames are pushed from the stdio buffer to the
/// page cache. The append path never fsyncs — both policies bound the
/// loss window to frames a crashed *process* had not flushed, which the
/// torn-tail-tolerant reader already handles; group commit merely widens
/// that window from one event to one batch in exchange for not paying a
/// flush per event.
struct SyncPolicy {
  enum class Kind : uint8_t {
    kEveryAppend = 0,  ///< Flush after each event (the PR 3 behavior).
    kGroupCommit = 1,  ///< Flush after N events or after an interval.
  };
  Kind kind = Kind::kEveryAppend;
  /// Group commit: flush once this many events are pending.
  uint32_t group_events = 64;
  /// Group commit: flush when the oldest pending event is older than
  /// this, checked at the next append (0 disables the age trigger).
  double group_interval_ms = 5.0;

  static SyncPolicy EveryAppend() { return SyncPolicy{}; }
  static SyncPolicy GroupCommit(uint32_t events, double interval_ms) {
    SyncPolicy p;
    p.kind = Kind::kGroupCommit;
    p.group_events = events;
    p.group_interval_ms = interval_ms;
    return p;
  }
};

namespace log_internal {

/// Shared group-commit trigger: accounts one just-written frame against
/// `pending`/`oldest` and returns true when the policy wants a flush now
/// (always, under every-append). Both log formats call this under their
/// append mutex so the two cannot drift.
bool ShouldFlushAfterAppend(const SyncPolicy& sync, uint32_t* pending,
                            std::chrono::steady_clock::time_point* oldest);

}  // namespace log_internal

/// \brief The log surface the durability subsystem programs against:
/// appends, explicit flush (group-commit barriers at batch/checkpoint
/// boundaries), LSN accounting and prefix truncation. EventLog and
/// SegmentedEventLog both implement it, so the checkpointer's retention
/// GC and the simulator are format-agnostic.
class EventLogBase : public EventSink {
 public:
  /// Pushes every appended frame to the page cache. Called at batch and
  /// checkpoint boundaries under group commit; a no-op under every-append.
  virtual Status Flush() = 0;
  /// Discards every event with LSN < `lsn` (how is format-specific; both
  /// are crash-atomic, LSN-stable and safe against concurrent Append).
  virtual Status TruncateBefore(uint64_t lsn) = 0;
  /// Returns the LSN the next event will get (== events ever appended).
  virtual uint64_t next_lsn() const = 0;
  /// Returns the LSN of the oldest retained event.
  virtual uint64_t base_lsn() const = 0;
};

/// \brief Append-only, optionally file-backed event log.
///
/// Every record is framed as [u32 length][u32 crc32][payload] and flushed
/// on append, so a crash can tear at most the final frame; the reader
/// stops cleanly at a torn or corrupt frame and returns the valid prefix
/// (standard WAL semantics). Positions in the log are LSNs: the index of
/// an event since the log was opened. A checkpoint manifest records the
/// LSN its snapshot covers; recovery replays everything after it.
///
/// Compaction: TruncateBefore(lsn) discards the prefix below `lsn` once a
/// retained checkpoint covers it. LSNs are stable across truncation — a
/// truncated file starts with a marker frame recording its base LSN, and
/// the events that remain keep the LSNs they were appended at.
class EventLog : public EventLogBase {
 public:
  /// Opens a memory-only log (tests, benches that never crash).
  EventLog() = default;

  /// Opens (creating or truncating) a file-backed log at `path`.
  static StatusOr<EventLog> Open(const std::string& path);

  /// Re-opens an existing file-backed log for appending, first reading
  /// the valid prefix so next_lsn() continues where the previous process
  /// stopped, then rewriting that prefix so any torn final frame is
  /// physically truncated BEFORE new appends land — a frame written after
  /// garbage would be unreachable to every future reader. The rewrite is
  /// atomic (tmp file + rename), so a crash mid-reopen leaves the old
  /// log intact. Preserves the base LSN of a previously truncated log.
  /// Used when a recovered process resumes logging.
  static StatusOr<EventLog> OpenForAppend(const std::string& path);

  ~EventLog() override;

  EventLog(EventLog&& other) noexcept;
  EventLog& operator=(EventLog&& other) noexcept;
  EventLog(const EventLog&) = delete;
  EventLog& operator=(const EventLog&) = delete;

  /// Appends one event (retained in memory; written to the file when
  /// file-backed and flushed per the sync policy). Thread-safe.
  Status Append(const Event& event) override;

  /// Sets when appends flush (default: every append). Thread-safe; takes
  /// effect from the next Append.
  void set_sync_policy(const SyncPolicy& policy);

  /// Flushes any pending group-commit frames to the page cache.
  Status Flush() override;

  /// Discards every event with LSN < `lsn` (a no-op when `lsn` is at or
  /// below the current base). File-backed logs rewrite atomically: the
  /// retained suffix goes to a sibling ".tmp" file behind a base-LSN
  /// marker frame, which renames over the log — a crash at any point
  /// leaves either the old or the new file complete, never a mix.
  /// Thread-safe with respect to concurrent Append (appends block for the
  /// duration of the rewrite and then land in the new file). Rejects
  /// `lsn` beyond next_lsn(): truncating events that were never appended
  /// is a caller bug, not a request.
  Status TruncateBefore(uint64_t lsn) override;

  /// Returns the LSN the next event will get (== events ever appended).
  uint64_t next_lsn() const override;

  /// Returns the LSN of the oldest retained event (0 until the first
  /// TruncateBefore).
  uint64_t base_lsn() const override;

  /// In-memory view of the retained events: events()[i] has LSN
  /// base_lsn() + i. Not safe to call concurrently with Append or
  /// TruncateBefore.
  const std::vector<Event>& events() const { return events_; }

  /// Returns the file path ("" when memory-only).
  const std::string& path() const { return path_; }

 private:
  /// Flushes per the sync policy after a frame write. Caller holds mu_.
  Status MaybeFlushLocked();

  mutable std::mutex mu_;
  std::vector<Event> events_;
  uint64_t base_lsn_ = 0;
  std::string path_;
  std::FILE* file_ = nullptr;
  SyncPolicy sync_;
  uint32_t pending_flush_ = 0;  ///< Frames written since the last flush.
  std::chrono::steady_clock::time_point oldest_pending_;
};

/// \brief What ReadEventLogContents returns: the retained events plus the
/// base LSN the file's marker frame recorded (0 for never-truncated logs).
/// events[i] has LSN base_lsn + i.
struct EventLogContents {
  uint64_t base_lsn = 0;
  std::vector<Event> events;

  /// Returns the LSN one past the last retained event.
  uint64_t next_lsn() const { return base_lsn + events.size(); }
};

/// \brief Reads the valid prefix of a log file, including its base LSN.
/// Torn or corrupt tails are dropped silently (they are the expected
/// crash artifact); a missing file is NotFound.
StatusOr<EventLogContents> ReadEventLogContents(const std::string& path);

/// \brief Convenience wrapper returning only the retained events (callers
/// that need LSN addressing use ReadEventLogContents).
StatusOr<std::vector<Event>> ReadEventLogFile(const std::string& path);

}  // namespace amnesia

#endif  // AMNESIA_DURABILITY_EVENT_LOG_H_
