// Copyright 2026 The AmnesiaDB Authors

#include "durability/log_segments.h"

#include <dirent.h>
#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <utility>

#include "durability/checkpointer.h"  // EnsureDir
#include "obs/engine_metrics.h"
#include "durability/frame_io.h"
#include "storage/checkpoint_io.h"

namespace amnesia {

namespace {

constexpr uint32_t kSegmentMagic = 0x47455341;  // "ASEG"
constexpr uint32_t kSegmentFormatVersion = 1;
// magic + version + base LSN + CRC over the first 16 bytes.
constexpr size_t kSegmentHeaderSize = 4 + 4 + 8 + 4;
constexpr const char* kSegmentPrefix = "log-";
constexpr const char* kSegmentSuffix = ".seg";

std::string SegmentName(uint64_t base_lsn) {
  return kSegmentPrefix + std::to_string(base_lsn) + kSegmentSuffix;
}

/// Accounts one durability barrier: the fsync always counts; the batch
/// size is only recorded when appends were actually covered (an explicit
/// barrier with nothing pending is a zero-size batch and would skew the
/// distribution).
void NoteLogFlush(uint32_t batch_size) {
  obs::EngineMetrics& m = obs::EngineMetrics::Get();
  m.log_fsyncs->Inc();
  if (batch_size > 0) m.log_batch_size->Record(batch_size);
}

bool IsSegmentName(const std::string& name) {
  return name.rfind(kSegmentPrefix, 0) == 0 &&
         name.size() > std::strlen(kSegmentPrefix) +
                           std::strlen(kSegmentSuffix) &&
         name.rfind(kSegmentSuffix) ==
             name.size() - std::strlen(kSegmentSuffix);
}

std::vector<uint8_t> EncodeSegmentHeader(uint64_t base_lsn) {
  std::vector<uint8_t> out;
  ckpt::Writer w(&out);
  w.U32(kSegmentMagic);
  w.U32(kSegmentFormatVersion);
  w.U64(base_lsn);
  w.U32(ckpt::Crc32(out));
  return out;
}

/// Reads and verifies a segment header at the current (start) position.
/// Returns false on a short read, wrong magic/version or CRC mismatch —
/// the file is not a usable segment.
bool ReadSegmentHeader(std::FILE* f, uint64_t* base_lsn) {
  std::vector<uint8_t> header(kSegmentHeaderSize);
  if (std::fread(header.data(), 1, header.size(), f) != header.size()) {
    return false;
  }
  uint32_t stored_crc = 0;
  std::memcpy(&stored_crc, header.data() + 16, sizeof(stored_crc));
  if (ckpt::Crc32(header.data(), 16) != stored_crc) return false;
  uint32_t magic = 0, version = 0;
  std::memcpy(&magic, header.data(), sizeof(magic));
  std::memcpy(&version, header.data() + 4, sizeof(version));
  if (magic != kSegmentMagic || version != kSegmentFormatVersion) {
    return false;
  }
  std::memcpy(base_lsn, header.data() + 8, sizeof(*base_lsn));
  return true;
}

bool FileExists(const std::string& path) {
  struct stat st;
  return stat(path.c_str(), &st) == 0 && S_ISREG(st.st_mode);
}

uint64_t FileSize(const std::string& path) {
  struct stat st;
  return stat(path.c_str(), &st) == 0 ? static_cast<uint64_t>(st.st_size)
                                      : 0;
}

/// Lists the log-*.seg file names in `dir` (names only, no validation).
/// Returns false when the directory cannot be opened.
bool ListSegmentNames(const std::string& dir, std::vector<std::string>* out) {
  DIR* d = opendir(dir.c_str());
  if (d == nullptr) return false;
  while (dirent* entry = readdir(d)) {
    if (IsSegmentName(entry->d_name)) out->push_back(entry->d_name);
  }
  closedir(d);
  return true;
}

/// One segment file on disk, scanned.
struct ScannedSegment {
  uint64_t base = 0;
  uint64_t count = 0;        ///< Valid frames decoded.
  uint64_t valid_bytes = 0;  ///< Header + valid frames; a tear starts here.
  std::string path;
};

/// Everything a directory scan learns about a segmented log.
struct SegmentScan {
  /// The contiguous valid chain, oldest first. Events across the chain
  /// are decoded into `events` (events[i] has LSN chain[0].base + i).
  std::vector<ScannedSegment> chain;
  std::vector<Event> events;
  /// Segment files that are not part of the chain: an invalid or torn
  /// header (crash during roll), a base-LSN gap after a corrupt segment.
  /// Readers ignore them; OpenForAppend unlinks them.
  std::vector<std::string> unreachable;
  /// True when the last chain segment has bytes past valid_bytes (torn
  /// tail or mid-segment corruption).
  bool tail_torn = false;
};

/// Scans `dir`: orders the valid-headered segments by base LSN, walks the
/// chain decoding frames, and stops the chain at the first tear, decode
/// failure or base-LSN discontinuity. NotFound when the directory itself
/// is missing. Every frame is decoded either way (chain validity depends
/// on it); `collect_events` false skips retaining the decoded events —
/// OpenForAppend only needs the chain shape, and the retained stream of
/// a large log is an O(total events) allocation.
StatusOr<SegmentScan> ScanSegments(const std::string& dir,
                                   bool collect_events = true) {
  std::vector<std::string> names;
  if (!ListSegmentNames(dir, &names)) {
    return Status::NotFound("cannot open segmented log directory '" + dir +
                            "'");
  }

  SegmentScan scan;
  std::vector<ScannedSegment> candidates;
  for (const std::string& name : names) {
    const std::string path = dir + "/" + name;
    std::FILE* f = std::fopen(path.c_str(), "rb");
    uint64_t base = 0;
    if (f == nullptr || !ReadSegmentHeader(f, &base)) {
      // A header that never finished (crash during roll) holds no durable
      // events; the file is unreachable to every reader.
      if (f != nullptr) std::fclose(f);
      scan.unreachable.push_back(path);
      continue;
    }
    std::fclose(f);
    ScannedSegment seg;
    seg.base = base;
    seg.path = path;
    candidates.push_back(std::move(seg));
  }
  std::sort(candidates.begin(), candidates.end(),
            [](const ScannedSegment& a, const ScannedSegment& b) {
              return a.base < b.base;
            });

  bool chain_broken = false;
  for (ScannedSegment& seg : candidates) {
    if (chain_broken ||
        (!scan.chain.empty() &&
         seg.base != scan.chain.back().base + scan.chain.back().count)) {
      // Either a previous segment ended early (tear/corruption) or the
      // bases have a gap: events past this point have no contiguous LSN
      // path from the base and can never be replayed.
      chain_broken = true;
      scan.unreachable.push_back(seg.path);
      continue;
    }
    std::FILE* f = std::fopen(seg.path.c_str(), "rb");
    if (f == nullptr) {
      chain_broken = true;
      scan.unreachable.push_back(seg.path);
      continue;
    }
    uint64_t base = 0;
    ReadSegmentHeader(f, &base);  // verified above; positions past it
    seg.valid_bytes = kSegmentHeaderSize;
    std::vector<uint8_t> payload;
    while (wal::ReadFrame(f, &payload)) {
      auto event = DecodeEvent(payload);
      if (!event.ok()) break;  // frame-CRC-clean corruption: stop here
      if (collect_events) scan.events.push_back(std::move(event).value());
      ++seg.count;
      seg.valid_bytes += wal::kFrameHeaderSize + payload.size();
    }
    std::fclose(f);
    const bool torn = seg.valid_bytes < FileSize(seg.path);
    scan.chain.push_back(std::move(seg));
    if (torn) {
      // The valid prefix ends inside this segment; later segments (if
      // any) are unreachable and the chain-broken branch collects them.
      chain_broken = true;
      scan.tail_torn = true;
    }
  }
  return scan;
}

}  // namespace

// ------------------------------------------------------ SegmentedEventLog

StatusOr<SegmentedEventLog> SegmentedEventLog::Open(
    const std::string& dir, const SegmentedLogOptions& options) {
  AMNESIA_RETURN_NOT_OK(EnsureDir(dir));
  // A fresh log in a previously used directory must not resurrect the old
  // instance's events — same contract as EventLog::Open's "wb" truncate.
  // Unlinking by name: the doomed contents never need to be read.
  std::vector<std::string> stale;
  ListSegmentNames(dir, &stale);
  for (const std::string& name : stale) {
    const std::string path = dir + "/" + name;
    if (std::remove(path.c_str()) != 0) {
      return Status::Internal("cannot remove stale segment '" + path + "'");
    }
  }

  SegmentedEventLog log;
  log.dir_ = dir;
  log.options_ = options;
  log.active_base_ = 0;
  log.active_path_ = dir + "/" + SegmentName(0);
  log.active_ = std::fopen(log.active_path_.c_str(), "wb");
  if (log.active_ == nullptr) {
    return Status::Internal("cannot create segment '" + log.active_path_ +
                            "'");
  }
  const std::vector<uint8_t> header = EncodeSegmentHeader(0);
  if (std::fwrite(header.data(), 1, header.size(), log.active_) !=
          header.size() ||
      std::fflush(log.active_) != 0) {
    return Status::Internal("cannot write segment header to '" +
                            log.active_path_ + "'");
  }
  log.active_bytes_ = kSegmentHeaderSize;
  return log;
}

StatusOr<SegmentedEventLog> SegmentedEventLog::OpenForAppend(
    const std::string& dir, const SegmentedLogOptions& options) {
  AMNESIA_RETURN_NOT_OK(EnsureDir(dir));

  // One-time migration off the legacy single-file format. While the v1
  // file exists it is authoritative — segments in the directory are a
  // crashed earlier split and are rebuilt — so the only commit point is
  // the final remove, and a crash anywhere before it changes nothing.
  if (!options.migrate_from.empty() && FileExists(options.migrate_from)) {
    AMNESIA_ASSIGN_OR_RETURN(EventLogContents legacy,
                             ReadEventLogContents(options.migrate_from));
    std::vector<std::string> stale;
    ListSegmentNames(dir, &stale);
    for (const std::string& name : stale) {
      const std::string path = dir + "/" + name;
      if (std::remove(path.c_str()) != 0) {
        return Status::Internal("cannot clear crashed migration '" + path +
                                "'");
      }
    }
    // Split the valid prefix into size-bounded segments, preserving the
    // marker frame's base LSN in the first header so every retained
    // event keeps the LSN it was appended at.
    uint64_t base = legacy.base_lsn;
    size_t next_event = 0;
    do {
      const std::string path = dir + "/" + SegmentName(base);
      std::FILE* f = std::fopen(path.c_str(), "wb");
      if (f == nullptr) {
        return Status::Internal("cannot create segment '" + path + "'");
      }
      const std::vector<uint8_t> header = EncodeSegmentHeader(base);
      uint64_t bytes = header.size();
      Status written =
          std::fwrite(header.data(), 1, header.size(), f) == header.size()
              ? Status::OK()
              : Status::Internal("cannot write segment header to '" + path +
                                 "'");
      bool segment_has_events = false;
      while (written.ok() && next_event < legacy.events.size() &&
             // Like the append path's roll-before-append: every segment
             // takes at least one event, so a threshold below the header
             // size degrades to one-event segments instead of spinning.
             (!segment_has_events || bytes < options.max_segment_bytes)) {
        const std::vector<uint8_t> payload =
            EncodeEvent(legacy.events[next_event]);
        written = wal::WriteFrame(f, payload, path);
        bytes += wal::kFrameHeaderSize + payload.size();
        segment_has_events = true;
        ++next_event;
        ++base;
      }
      // Migrated segments must be durable before the v1 file goes away —
      // there is no older artifact to fall back to afterwards.
      if (written.ok() &&
          (std::fflush(f) != 0 || fsync(fileno(f)) != 0)) {
        written = Status::Internal("cannot flush segment '" + path + "'");
      }
      if (std::fclose(f) != 0 && written.ok()) {
        written = Status::Internal("cannot close segment '" + path + "'");
      }
      AMNESIA_RETURN_NOT_OK(written);
    } while (next_event < legacy.events.size());
    // The per-file fsyncs order the segment BYTES, but their directory
    // entries also have to survive before the v1 file — the only other
    // copy — goes away, so fsync the directory across the commit point.
    const int dir_fd = open(dir.c_str(), O_RDONLY);
    if (dir_fd < 0 || fsync(dir_fd) != 0) {
      if (dir_fd >= 0) close(dir_fd);
      return Status::Internal("cannot fsync log directory '" + dir + "'");
    }
    close(dir_fd);
    if (std::remove(options.migrate_from.c_str()) != 0) {
      return Status::Internal("cannot remove migrated legacy log '" +
                              options.migrate_from + "'");
    }
  }

  AMNESIA_ASSIGN_OR_RETURN(SegmentScan scan,
                           ScanSegments(dir, /*collect_events=*/false));
  if (scan.chain.empty()) {
    return Status::NotFound("no usable segment in '" + dir + "'");
  }
  // Make the on-disk state match the valid prefix BEFORE new appends
  // land: garbage after the last valid frame would hide every frame
  // appended behind it from all future readers. truncate(2) is a single
  // atomic metadata operation — cheaper than the legacy format's whole-
  // file rewrite and bounded by one segment.
  const ScannedSegment& tail = scan.chain.back();
  if (scan.tail_torn &&
      truncate(tail.path.c_str(), static_cast<off_t>(tail.valid_bytes)) !=
          0) {
    return Status::Internal("cannot truncate torn segment '" + tail.path +
                            "'");
  }
  for (const std::string& path : scan.unreachable) {
    if (std::remove(path.c_str()) != 0) {
      return Status::Internal("cannot remove unreachable segment '" + path +
                              "'");
    }
  }

  SegmentedEventLog log;
  log.dir_ = dir;
  log.options_ = options;
  for (size_t i = 0; i + 1 < scan.chain.size(); ++i) {
    log.sealed_.push_back(Sealed{scan.chain[i].base, scan.chain[i].count,
                                 scan.chain[i].path});
  }
  log.active_base_ = tail.base;
  log.active_count_ = tail.count;
  log.active_bytes_ = tail.valid_bytes;
  log.active_path_ = tail.path;
  log.active_ = std::fopen(tail.path.c_str(), "ab");
  if (log.active_ == nullptr) {
    return Status::Internal("cannot reopen segment '" + tail.path + "'");
  }
  return log;
}

SegmentedEventLog::~SegmentedEventLog() {
  if (active_ != nullptr) std::fclose(active_);
}

SegmentedEventLog::SegmentedEventLog(SegmentedEventLog&& other) noexcept {
  std::lock_guard<std::mutex> lock(other.mu_);
  dir_ = std::move(other.dir_);
  options_ = std::move(other.options_);
  sealed_ = std::move(other.sealed_);
  active_base_ = other.active_base_;
  active_count_ = other.active_count_;
  active_bytes_ = other.active_bytes_;
  active_path_ = std::move(other.active_path_);
  active_ = other.active_;
  unlinked_total_ = other.unlinked_total_;
  pending_flush_ = other.pending_flush_;
  oldest_pending_ = other.oldest_pending_;
  other.active_ = nullptr;
  other.sealed_.clear();
  other.active_base_ = 0;
  other.active_count_ = 0;
  other.active_bytes_ = 0;
  other.pending_flush_ = 0;
}

SegmentedEventLog& SegmentedEventLog::operator=(
    SegmentedEventLog&& other) noexcept {
  if (this == &other) return *this;
  if (active_ != nullptr) std::fclose(active_);
  std::lock_guard<std::mutex> lock(other.mu_);
  dir_ = std::move(other.dir_);
  options_ = std::move(other.options_);
  sealed_ = std::move(other.sealed_);
  active_base_ = other.active_base_;
  active_count_ = other.active_count_;
  active_bytes_ = other.active_bytes_;
  active_path_ = std::move(other.active_path_);
  active_ = other.active_;
  unlinked_total_ = other.unlinked_total_;
  pending_flush_ = other.pending_flush_;
  oldest_pending_ = other.oldest_pending_;
  other.active_ = nullptr;
  other.sealed_.clear();
  other.active_base_ = 0;
  other.active_count_ = 0;
  other.active_bytes_ = 0;
  other.pending_flush_ = 0;
  return *this;
}

Status SegmentedEventLog::RollLocked() {
  // Seal: the segment becomes immutable, so make it durable now — the
  // whole point of sealed segments is that truncation and recovery can
  // treat them as settled artifacts. fclose runs unconditionally so a
  // failed flush/fsync cannot leak the stream.
  const bool flush_failed =
      std::fflush(active_) != 0 || fsync(fileno(active_)) != 0;
  const bool close_failed = std::fclose(active_) != 0;
  if (flush_failed || close_failed) {
    active_ = nullptr;
    return Status::Internal("cannot seal segment '" + active_path_ + "'");
  }
  // The seal barrier drains whatever group-commit batch was filling.
  NoteLogFlush(pending_flush_);
  sealed_.push_back(Sealed{active_base_, active_count_, active_path_});
  const uint64_t base = active_base_ + active_count_;
  active_base_ = base;
  active_count_ = 0;
  active_path_ = dir_ + "/" + SegmentName(base);
  pending_flush_ = 0;
  active_ = std::fopen(active_path_.c_str(), "wb");
  if (active_ == nullptr) {
    return Status::Internal("cannot create segment '" + active_path_ + "'");
  }
  const std::vector<uint8_t> header = EncodeSegmentHeader(base);
  if (std::fwrite(header.data(), 1, header.size(), active_) !=
          header.size() ||
      std::fflush(active_) != 0) {
    return Status::Internal("cannot write segment header to '" +
                            active_path_ + "'");
  }
  active_bytes_ = kSegmentHeaderSize;
  return Status::OK();
}

Status SegmentedEventLog::Append(const Event& event) {
  std::lock_guard<std::mutex> lock(mu_);
  if (active_ == nullptr) {
    return Status::FailedPrecondition("segmented log is not open");
  }
  // Roll only once the segment holds something: an empty roll would seal
  // a zero-event entry whose path aliases the next active segment (base
  // unchanged), and a truncation at that LSN would unlink the live file.
  // A threshold below the header size thus degrades to one-event
  // segments, like the migration split.
  if (active_bytes_ >= options_.max_segment_bytes && active_count_ > 0) {
    AMNESIA_RETURN_NOT_OK(RollLocked());
  }
  const std::vector<uint8_t> payload = EncodeEvent(event);
  AMNESIA_RETURN_NOT_OK(wal::WriteFrame(active_, payload, active_path_));
  active_bytes_ += wal::kFrameHeaderSize + payload.size();
  ++active_count_;
  obs::EngineMetrics::Get().log_appends->Inc();
  if (!log_internal::ShouldFlushAfterAppend(options_.sync, &pending_flush_,
                                            &oldest_pending_)) {
    return Status::OK();  // the batch is still filling
  }
  if (std::fflush(active_) != 0) {
    return Status::Internal("segment flush failed on '" + active_path_ +
                            "'");
  }
  // pending_flush_ stays 0 under every-append sync; that is a batch of 1.
  NoteLogFlush(pending_flush_ == 0 ? 1 : pending_flush_);
  pending_flush_ = 0;
  return Status::OK();
}

Status SegmentedEventLog::Flush() {
  std::lock_guard<std::mutex> lock(mu_);
  if (active_ != nullptr && std::fflush(active_) != 0) {
    return Status::Internal("segment flush failed on '" + active_path_ +
                            "'");
  }
  if (active_ != nullptr) NoteLogFlush(pending_flush_);
  pending_flush_ = 0;
  return Status::OK();
}

Status SegmentedEventLog::TruncateBefore(uint64_t lsn) {
  // Splice the doomed segments out of the index under the mutex — the
  // only part appenders can ever wait on, O(1) per segment — then unlink
  // outside it, oldest first, so a crash mid-pass always leaves a
  // contiguous chain (plus fully valid stale segments the next
  // truncation collects).
  std::lock_guard<std::mutex> truncations(truncate_mu_);
  std::vector<Sealed> doomed;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (lsn > active_base_ + active_count_) {
      return Status::InvalidArgument(
          "cannot truncate to LSN " + std::to_string(lsn) +
          ": log holds [" +
          std::to_string(sealed_.empty() ? active_base_
                                         : sealed_.front().base) +
          ", " + std::to_string(active_base_ + active_count_) + ")");
    }
    while (!sealed_.empty() &&
           sealed_.front().base + sealed_.front().count <= lsn) {
      doomed.push_back(std::move(sealed_.front()));
      sealed_.pop_front();
    }
  }
  for (size_t i = 0; i < doomed.size(); ++i) {
    if (std::remove(doomed[i].path.c_str()) != 0) {
      // Re-adopt everything not yet unlinked: forgetting a segment that
      // is still on disk would let a LATER truncation unlink past it and
      // leave a base-LSN gap — which recovery reads as "the chain ends
      // here" and OpenForAppend deletes the live suffix behind it. With
      // the segments back in the index this truncation simply retries
      // next checkpoint.
      std::lock_guard<std::mutex> lock(mu_);
      unlinked_total_ += i;
      const std::string failed = doomed[i].path;
      for (size_t j = doomed.size(); j > i; --j) {
        sealed_.push_front(std::move(doomed[j - 1]));
      }
      return Status::Internal("cannot unlink truncated segment '" + failed +
                              "'");
    }
  }
  std::lock_guard<std::mutex> lock(mu_);
  unlinked_total_ += doomed.size();
  if (!doomed.empty()) obs::EngineMetrics::Get().log_truncations->Inc();
  return Status::OK();
}

uint64_t SegmentedEventLog::next_lsn() const {
  std::lock_guard<std::mutex> lock(mu_);
  return active_base_ + active_count_;
}

uint64_t SegmentedEventLog::base_lsn() const {
  std::lock_guard<std::mutex> lock(mu_);
  return sealed_.empty() ? active_base_ : sealed_.front().base;
}

uint64_t SegmentedEventLog::num_segments() const {
  std::lock_guard<std::mutex> lock(mu_);
  return sealed_.size() + (active_ != nullptr ? 1 : 0);
}

uint64_t SegmentedEventLog::segments_unlinked() const {
  std::lock_guard<std::mutex> lock(mu_);
  return unlinked_total_;
}

// ---------------------------------------------------------------- readers

StatusOr<EventLogContents> ReadSegmentedLogContents(const std::string& dir) {
  AMNESIA_ASSIGN_OR_RETURN(SegmentScan scan, ScanSegments(dir));
  if (scan.chain.empty()) {
    return Status::NotFound("no usable segment in '" + dir + "'");
  }
  EventLogContents contents;
  contents.base_lsn = scan.chain.front().base;
  contents.events = std::move(scan.events);
  return contents;
}

StatusOr<EventLogContents> ReadAnyEventLogContents(const std::string& path) {
  struct stat st;
  if (stat(path.c_str(), &st) == 0 && S_ISDIR(st.st_mode)) {
    return ReadSegmentedLogContents(path);
  }
  return ReadEventLogContents(path);
}

std::string EventLogPathFor(const std::string& checkpoint_dir,
                            LogFormat format) {
  return format == LogFormat::kSegmented ? checkpoint_dir + "/events.segs"
                                         : checkpoint_dir + "/events.log";
}

Status RemoveEventLog(const std::string& path) {
  struct stat st;
  if (stat(path.c_str(), &st) != 0) return Status::OK();  // nothing there
  if (!S_ISDIR(st.st_mode)) {
    if (std::remove(path.c_str()) != 0) {
      return Status::Internal("cannot remove event log '" + path + "'");
    }
    return Status::OK();
  }
  std::vector<std::string> names;
  ListSegmentNames(path, &names);
  for (const std::string& name : names) {
    const std::string seg = path + "/" + name;
    if (std::remove(seg.c_str()) != 0) {
      return Status::Internal("cannot remove segment '" + seg + "'");
    }
  }
  // Foreign files would make the rmdir fail; the segments are gone, which
  // is what correctness needs, so an undeletable directory is not fatal.
  rmdir(path.c_str());
  return Status::OK();
}

}  // namespace amnesia
