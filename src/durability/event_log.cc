// Copyright 2026 The AmnesiaDB Authors

#include "durability/event_log.h"

#include <unistd.h>

#include <utility>

#include "amnesia/controller.h"
#include "durability/frame_io.h"
#include "obs/engine_metrics.h"
#include "storage/checkpoint_io.h"

namespace amnesia {

namespace {

/// One flush reached the OS: note it and the group-commit batch it
/// covered (0 = an explicit barrier with nothing pending; not a batch).
void NoteLogFlush(uint32_t batch_size) {
  obs::EngineMetrics& m = obs::EngineMetrics::Get();
  m.log_fsyncs->Inc();
  if (batch_size > 0) m.log_batch_size->Record(batch_size);
}

// A truncated log file opens with one marker frame whose payload is
// [u8 0]["TRNC"][u64 base_lsn]. Kind byte 0 is outside the EventKind
// range, so the marker can never collide with a real event; readers from
// before log compaction existed stop at it, which only costs them the
// suffix of an already-compacted log.
constexpr uint8_t kMarkerKindByte = 0;
constexpr uint32_t kTruncationMagic = 0x434E5254;  // "TRNC"
constexpr size_t kMarkerPayloadSize = 1 + 4 + 8;

std::vector<uint8_t> EncodeTruncationMarker(uint64_t base_lsn) {
  std::vector<uint8_t> out;
  ckpt::Writer w(&out);
  w.U8(kMarkerKindByte);
  w.U32(kTruncationMagic);
  w.U64(base_lsn);
  return out;
}

/// Returns true (and the base LSN) when `payload` is a truncation marker.
bool DecodeTruncationMarker(const std::vector<uint8_t>& payload,
                            uint64_t* base_lsn) {
  if (payload.size() != kMarkerPayloadSize ||
      payload[0] != kMarkerKindByte) {
    return false;
  }
  uint32_t magic = 0;
  std::memcpy(&magic, payload.data() + 1, sizeof(magic));
  if (magic != kTruncationMagic) return false;
  std::memcpy(base_lsn, payload.data() + 1 + sizeof(magic),
              sizeof(*base_lsn));
  return true;
}

using wal::WriteFrame;

/// Rewrites the log at `path` to hold a base-LSN marker (when base_lsn >
/// 0) plus events[begin..], atomically: everything goes to a ".tmp"
/// sibling that renames over the log, so a crash at any point leaves
/// either the old or the new file complete — never a torn rewrite. The
/// orphan ".tmp" of a crashed rewrite is simply overwritten next time.
Status RewriteLogFileAtomic(const std::string& path, uint64_t base_lsn,
                            const std::vector<Event>& events, size_t begin) {
  const std::string tmp = path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) {
    return Status::Internal("cannot open '" + tmp + "' for log rewrite");
  }
  Status written = Status::OK();
  if (base_lsn > 0) {
    written = WriteFrame(f, EncodeTruncationMarker(base_lsn), tmp);
  }
  for (size_t i = begin; written.ok() && i < events.size(); ++i) {
    written = WriteFrame(f, EncodeEvent(events[i]), tmp);
  }
  // fflush drains stdio to the page cache; fsync orders the data blocks
  // before the rename's metadata. Without it a power loss after the
  // rename could surface an empty rewritten log — and unlike a torn blob
  // or manifest, a lost log suffix has no older artifact to fall back to.
  if (!written.ok() || std::fflush(f) != 0 || fsync(fileno(f)) != 0) {
    std::fclose(f);
    std::remove(tmp.c_str());
    return written.ok()
               ? Status::Internal("cannot flush rewritten log '" + tmp + "'")
               : written;
  }
  if (std::fclose(f) != 0) {
    std::remove(tmp.c_str());
    return Status::Internal("cannot close rewritten log '" + tmp + "'");
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return Status::Internal("cannot rename rewritten log over '" + path +
                            "'");
  }
  return Status::OK();
}

}  // namespace

std::vector<uint8_t> EncodeEvent(const Event& event) {
  std::vector<uint8_t> out;
  ckpt::Writer w(&out);
  w.U8(static_cast<uint8_t>(event.kind));
  w.U32(event.shard);
  switch (event.kind) {
    case EventKind::kBeginBatch:
    case EventKind::kCompact:
      break;
    case EventKind::kAppendRows:
      w.U64(event.columns.size());
      for (const auto& col : event.columns) w.I64Array(col);
      break;
    case EventKind::kForget:
      w.U64(event.row);
      w.U8(event.backend);
      w.U32(event.payload_col);
      break;
    case EventKind::kScrub:
    case EventKind::kDropPartition:
      w.U64(event.row);
      w.I64(event.value);
      break;
    case EventKind::kRevive:
    case EventKind::kAccess:
      w.U64(event.row);
      break;
  }
  return out;
}

StatusOr<Event> DecodeEvent(const std::vector<uint8_t>& payload) {
  ckpt::Reader r(payload);
  Event event;
  uint8_t kind = 0;
  AMNESIA_RETURN_NOT_OK(r.U8(&kind));
  if (kind < static_cast<uint8_t>(EventKind::kBeginBatch) ||
      kind > static_cast<uint8_t>(EventKind::kDropPartition)) {
    return Status::InvalidArgument("unknown event kind " +
                                   std::to_string(kind));
  }
  event.kind = static_cast<EventKind>(kind);
  AMNESIA_RETURN_NOT_OK(r.U32(&event.shard));
  switch (event.kind) {
    case EventKind::kBeginBatch:
    case EventKind::kCompact:
      break;
    case EventKind::kAppendRows: {
      uint64_t cols = 0;
      AMNESIA_RETURN_NOT_OK(r.U64(&cols));
      if (cols == 0 || cols > 1'000'000) {
        return Status::InvalidArgument("implausible append arity");
      }
      event.columns.resize(static_cast<size_t>(cols));
      for (auto& col : event.columns) {
        AMNESIA_RETURN_NOT_OK(r.I64Array(&col));
        if (col.size() != event.columns[0].size()) {
          return Status::InvalidArgument("ragged append event");
        }
      }
      break;
    }
    case EventKind::kForget:
      AMNESIA_RETURN_NOT_OK(r.U64(&event.row));
      AMNESIA_RETURN_NOT_OK(r.U8(&event.backend));
      AMNESIA_RETURN_NOT_OK(r.U32(&event.payload_col));
      break;
    case EventKind::kScrub:
    case EventKind::kDropPartition:
      AMNESIA_RETURN_NOT_OK(r.U64(&event.row));
      AMNESIA_RETURN_NOT_OK(r.I64(&event.value));
      break;
    case EventKind::kRevive:
    case EventKind::kAccess:
      AMNESIA_RETURN_NOT_OK(r.U64(&event.row));
      break;
  }
  if (!r.AtEnd()) {
    return Status::InvalidArgument("trailing bytes after event payload");
  }
  return event;
}

Status ReplayEvent(const Event& event, std::vector<Table>* tables,
                   uint64_t* ingest_cursor, const ReplaySinks& sinks) {
  const size_t n = tables->size();
  if (n == 0) return Status::InvalidArgument("replay needs at least 1 shard");
  switch (event.kind) {
    case EventKind::kBeginBatch:
      // Batches advance in lockstep across shards (ShardedTable::BeginBatch).
      for (Table& t : *tables) t.BeginBatch();
      return Status::OK();
    case EventKind::kAppendRows: {
      if (event.columns.empty() ||
          event.columns.size() != (*tables)[0].num_columns()) {
        return Status::InvalidArgument("append event arity mismatch");
      }
      const size_t rows = event.columns[0].size();
      std::vector<Value> row_values(event.columns.size());
      for (size_t i = 0; i < rows; ++i) {
        Table& t = (*tables)[static_cast<size_t>(*ingest_cursor % n)];
        for (size_t c = 0; c < event.columns.size(); ++c) {
          row_values[c] = event.columns[c][i];
        }
        AMNESIA_RETURN_NOT_OK(t.AppendRow(row_values).status());
        ++*ingest_cursor;
      }
      return Status::OK();
    }
    default:
      break;
  }

  if (event.shard >= n) {
    return Status::InvalidArgument("event addresses shard " +
                                   std::to_string(event.shard) + " of " +
                                   std::to_string(n));
  }
  Table& table = (*tables)[event.shard];
  // Row-addressed events validate before any table access: a log that does
  // not match the restored snapshot (or corruption that survives the frame
  // CRC) must surface as Status, never as an out-of-bounds read. kCompact
  // addresses no row; kDropPartition's `row` is a partition index,
  // validated against the partition table below.
  if (event.kind != EventKind::kCompact &&
      event.kind != EventKind::kDropPartition &&
      event.row >= table.num_rows()) {
    return Status::InvalidArgument("event row " + std::to_string(event.row) +
                                   " out of range for shard " +
                                   std::to_string(event.shard));
  }
  switch (event.kind) {
    case EventKind::kForget: {
      if (event.payload_col >= table.num_columns()) {
        return Status::InvalidArgument("event payload column out of range");
      }
      // Re-route into the tier before flipping the state, exactly like
      // AmnesiaController::ForgetOne captured it.
      const auto backend = static_cast<BackendKind>(event.backend);
      if (backend == BackendKind::kColdStorage && sinks.cold != nullptr) {
        sinks.cold->Put(ColdTuple{event.row,
                                  table.value(event.payload_col, event.row),
                                  table.insert_tick(event.row),
                                  table.batch_of(event.row)});
      } else if (backend == BackendKind::kSummary &&
                 sinks.summaries != nullptr) {
        sinks.summaries->AddForgotten(event.payload_col,
                                      table.batch_of(event.row),
                                      table.value(event.payload_col, event.row));
      }
      return table.Forget(event.row);
    }
    case EventKind::kScrub:
      return table.ScrubRow(event.row, event.value);
    case EventKind::kCompact:
      table.CompactForgotten();
      return Status::OK();
    case EventKind::kRevive:
      return table.Revive(event.row);
    case EventKind::kAccess:
      table.BumpAccess(event.row);
      return Status::OK();
    case EventKind::kDropPartition: {
      if (table.mapped()) {
        // Idempotent: the restored snapshot may already reflect the drop,
        // or the crash may have interrupted it anywhere between the
        // directory rename and the deferred unlink. Unlinking stays
        // deferred to the post-replay cleanup pass.
        return table.DropPartition(static_cast<size_t>(event.row),
                                   /*defer_unlink=*/true)
            .status();
      }
      // Vector-mode fallback (a mapped shard's log replayed into an
      // in-memory table): the drop is a range forget + scrub.
      if (event.value <= 0) {
        return Status::InvalidArgument("drop event without partition size");
      }
      const uint64_t pr = static_cast<uint64_t>(event.value);
      const RowId row_begin = event.row * pr;
      const RowId row_end = row_begin + pr;
      if (row_end > table.num_rows()) {
        return Status::InvalidArgument("drop event past table end");
      }
      for (RowId r = row_begin; r < row_end; ++r) {
        if (table.IsActive(r)) AMNESIA_RETURN_NOT_OK(table.Forget(r));
        AMNESIA_RETURN_NOT_OK(table.ScrubRow(r, 0));
      }
      return Status::OK();
    }
    default:
      return Status::Internal("unhandled event kind");
  }
}

StatusOr<uint64_t> ReplayEvents(const std::vector<Event>& events,
                                uint64_t begin, std::vector<Table>* tables,
                                uint64_t* ingest_cursor,
                                const ReplaySinks& sinks) {
  uint64_t applied = 0;
  for (uint64_t i = begin; i < events.size(); ++i) {
    AMNESIA_RETURN_NOT_OK(ReplayEvent(events[i], tables, ingest_cursor, sinks));
    ++applied;
  }
  return applied;
}

// --------------------------------------------------------------- EventLog

StatusOr<EventLog> EventLog::Open(const std::string& path) {
  EventLog log;
  log.path_ = path;
  log.file_ = std::fopen(path.c_str(), "wb");
  if (log.file_ == nullptr) {
    return Status::Internal("cannot open event log '" + path + "'");
  }
  return log;
}

StatusOr<EventLog> EventLog::OpenForAppend(const std::string& path) {
  AMNESIA_ASSIGN_OR_RETURN(EventLogContents prefix,
                           ReadEventLogContents(path));
  // Rewrite the valid prefix (atomically, via tmp + rename): a torn final
  // frame must not precede new appends, or the reader would stop in front
  // of them forever — and a crash mid-rewrite must leave the old log
  // intact, not a shorter one.
  AMNESIA_RETURN_NOT_OK(
      RewriteLogFileAtomic(path, prefix.base_lsn, prefix.events, 0));
  EventLog log;
  log.path_ = path;
  log.base_lsn_ = prefix.base_lsn;
  log.events_ = std::move(prefix.events);
  log.file_ = std::fopen(path.c_str(), "ab");
  if (log.file_ == nullptr) {
    return Status::Internal("cannot reopen event log '" + path + "'");
  }
  return log;
}

EventLog::~EventLog() {
  if (file_ != nullptr) std::fclose(file_);
}

EventLog::EventLog(EventLog&& other) noexcept {
  std::lock_guard<std::mutex> lock(other.mu_);
  events_ = std::move(other.events_);
  base_lsn_ = other.base_lsn_;
  path_ = std::move(other.path_);
  file_ = other.file_;
  sync_ = other.sync_;
  pending_flush_ = other.pending_flush_;
  oldest_pending_ = other.oldest_pending_;
  other.file_ = nullptr;
  other.base_lsn_ = 0;
  other.path_.clear();
  other.pending_flush_ = 0;
}

EventLog& EventLog::operator=(EventLog&& other) noexcept {
  if (this == &other) return *this;
  if (file_ != nullptr) std::fclose(file_);
  std::lock_guard<std::mutex> lock(other.mu_);
  events_ = std::move(other.events_);
  base_lsn_ = other.base_lsn_;
  path_ = std::move(other.path_);
  file_ = other.file_;
  sync_ = other.sync_;
  pending_flush_ = other.pending_flush_;
  oldest_pending_ = other.oldest_pending_;
  other.file_ = nullptr;
  other.base_lsn_ = 0;
  other.path_.clear();
  other.pending_flush_ = 0;
  return *this;
}

Status EventLog::Append(const Event& event) {
  std::lock_guard<std::mutex> lock(mu_);
  obs::EngineMetrics::Get().log_appends->Inc();
  if (file_ != nullptr) {
    AMNESIA_RETURN_NOT_OK(WriteFrame(file_, EncodeEvent(event), path_));
    AMNESIA_RETURN_NOT_OK(MaybeFlushLocked());
  }
  events_.push_back(event);
  return Status::OK();
}

namespace log_internal {

bool ShouldFlushAfterAppend(const SyncPolicy& sync, uint32_t* pending,
                            std::chrono::steady_clock::time_point* oldest) {
  if (sync.kind != SyncPolicy::Kind::kGroupCommit) return true;
  if (*pending == 0) *oldest = std::chrono::steady_clock::now();
  ++*pending;
  if (*pending >= sync.group_events) return true;
  if (sync.group_interval_ms <= 0.0) return false;
  const double age_ms = std::chrono::duration<double, std::milli>(
                            std::chrono::steady_clock::now() - *oldest)
                            .count();
  return age_ms >= sync.group_interval_ms;
}

}  // namespace log_internal

Status EventLog::MaybeFlushLocked() {
  if (file_ == nullptr) return Status::OK();
  if (!log_internal::ShouldFlushAfterAppend(sync_, &pending_flush_,
                                            &oldest_pending_)) {
    return Status::OK();  // the batch is still filling
  }
  if (std::fflush(file_) != 0) {
    return Status::Internal("event log flush failed on '" + path_ + "'");
  }
  // pending_flush_ stays 0 under every-append sync; that is a batch of 1.
  NoteLogFlush(pending_flush_ == 0 ? 1 : pending_flush_);
  pending_flush_ = 0;
  return Status::OK();
}

void EventLog::set_sync_policy(const SyncPolicy& policy) {
  std::lock_guard<std::mutex> lock(mu_);
  sync_ = policy;
}

Status EventLog::Flush() {
  std::lock_guard<std::mutex> lock(mu_);
  if (file_ != nullptr && std::fflush(file_) != 0) {
    return Status::Internal("event log flush failed on '" + path_ + "'");
  }
  if (file_ != nullptr) NoteLogFlush(pending_flush_);
  pending_flush_ = 0;
  return Status::OK();
}

Status EventLog::TruncateBefore(uint64_t lsn) {
  std::lock_guard<std::mutex> lock(mu_);
  if (lsn <= base_lsn_) return Status::OK();  // already below the base
  if (lsn > base_lsn_ + events_.size()) {
    return Status::InvalidArgument(
        "cannot truncate to LSN " + std::to_string(lsn) + ": log holds [" +
        std::to_string(base_lsn_) + ", " +
        std::to_string(base_lsn_ + events_.size()) + ")");
  }
  const auto drop =
      static_cast<std::vector<Event>::difference_type>(lsn - base_lsn_);

  if (file_ != nullptr) {
    AMNESIA_RETURN_NOT_OK(RewriteLogFileAtomic(
        path_, lsn, events_, static_cast<size_t>(drop)));
    // The old handle still points at the unlinked inode; reopen so
    // subsequent appends land in the new file. The rewrite came from
    // memory, so frames pending under group commit are in it already.
    std::fclose(file_);
    pending_flush_ = 0;
    file_ = std::fopen(path_.c_str(), "ab");
    if (file_ == nullptr) {
      return Status::Internal("cannot reopen event log '" + path_ +
                              "' after truncation");
    }
  }
  events_.erase(events_.begin(), events_.begin() + drop);
  base_lsn_ = lsn;
  obs::EngineMetrics::Get().log_truncations->Inc();
  return Status::OK();
}

uint64_t EventLog::next_lsn() const {
  std::lock_guard<std::mutex> lock(mu_);
  return base_lsn_ + events_.size();
}

uint64_t EventLog::base_lsn() const {
  std::lock_guard<std::mutex> lock(mu_);
  return base_lsn_;
}

StatusOr<EventLogContents> ReadEventLogContents(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return Status::NotFound("cannot open event log '" + path + "'");
  }
  EventLogContents contents;
  bool first_frame = true;
  std::vector<uint8_t> payload;
  while (wal::ReadFrame(f, &payload)) {
    uint64_t base = 0;
    if (DecodeTruncationMarker(payload, &base)) {
      // Only valid as the leading frame (TruncateBefore rewrites the
      // whole file); anywhere else it is corruption — stop at it.
      if (!first_frame) break;
      contents.base_lsn = base;
      first_frame = false;
      continue;
    }
    first_frame = false;
    auto event = DecodeEvent(payload);
    if (!event.ok()) break;
    contents.events.push_back(std::move(event).value());
  }
  std::fclose(f);
  return contents;
}

StatusOr<std::vector<Event>> ReadEventLogFile(const std::string& path) {
  AMNESIA_ASSIGN_OR_RETURN(EventLogContents contents,
                           ReadEventLogContents(path));
  return std::move(contents.events);
}

}  // namespace amnesia
