// Copyright 2026 The AmnesiaDB Authors

#include "durability/event_log.h"

#include <utility>

#include "amnesia/controller.h"
#include "storage/checkpoint_io.h"

namespace amnesia {

std::vector<uint8_t> EncodeEvent(const Event& event) {
  std::vector<uint8_t> out;
  ckpt::Writer w(&out);
  w.U8(static_cast<uint8_t>(event.kind));
  w.U32(event.shard);
  switch (event.kind) {
    case EventKind::kBeginBatch:
    case EventKind::kCompact:
      break;
    case EventKind::kAppendRows:
      w.U64(event.columns.size());
      for (const auto& col : event.columns) w.I64Array(col);
      break;
    case EventKind::kForget:
      w.U64(event.row);
      w.U8(event.backend);
      w.U32(event.payload_col);
      break;
    case EventKind::kScrub:
      w.U64(event.row);
      w.I64(event.value);
      break;
    case EventKind::kRevive:
    case EventKind::kAccess:
      w.U64(event.row);
      break;
  }
  return out;
}

StatusOr<Event> DecodeEvent(const std::vector<uint8_t>& payload) {
  ckpt::Reader r(payload);
  Event event;
  uint8_t kind = 0;
  AMNESIA_RETURN_NOT_OK(r.U8(&kind));
  if (kind < static_cast<uint8_t>(EventKind::kBeginBatch) ||
      kind > static_cast<uint8_t>(EventKind::kAccess)) {
    return Status::InvalidArgument("unknown event kind " +
                                   std::to_string(kind));
  }
  event.kind = static_cast<EventKind>(kind);
  AMNESIA_RETURN_NOT_OK(r.U32(&event.shard));
  switch (event.kind) {
    case EventKind::kBeginBatch:
    case EventKind::kCompact:
      break;
    case EventKind::kAppendRows: {
      uint64_t cols = 0;
      AMNESIA_RETURN_NOT_OK(r.U64(&cols));
      if (cols == 0 || cols > 1'000'000) {
        return Status::InvalidArgument("implausible append arity");
      }
      event.columns.resize(static_cast<size_t>(cols));
      for (auto& col : event.columns) {
        AMNESIA_RETURN_NOT_OK(r.I64Array(&col));
        if (col.size() != event.columns[0].size()) {
          return Status::InvalidArgument("ragged append event");
        }
      }
      break;
    }
    case EventKind::kForget:
      AMNESIA_RETURN_NOT_OK(r.U64(&event.row));
      AMNESIA_RETURN_NOT_OK(r.U8(&event.backend));
      AMNESIA_RETURN_NOT_OK(r.U32(&event.payload_col));
      break;
    case EventKind::kScrub:
      AMNESIA_RETURN_NOT_OK(r.U64(&event.row));
      AMNESIA_RETURN_NOT_OK(r.I64(&event.value));
      break;
    case EventKind::kRevive:
    case EventKind::kAccess:
      AMNESIA_RETURN_NOT_OK(r.U64(&event.row));
      break;
  }
  if (!r.AtEnd()) {
    return Status::InvalidArgument("trailing bytes after event payload");
  }
  return event;
}

Status ReplayEvent(const Event& event, std::vector<Table>* tables,
                   uint64_t* ingest_cursor, const ReplaySinks& sinks) {
  const size_t n = tables->size();
  if (n == 0) return Status::InvalidArgument("replay needs at least 1 shard");
  switch (event.kind) {
    case EventKind::kBeginBatch:
      // Batches advance in lockstep across shards (ShardedTable::BeginBatch).
      for (Table& t : *tables) t.BeginBatch();
      return Status::OK();
    case EventKind::kAppendRows: {
      if (event.columns.empty() ||
          event.columns.size() != (*tables)[0].num_columns()) {
        return Status::InvalidArgument("append event arity mismatch");
      }
      const size_t rows = event.columns[0].size();
      std::vector<Value> row_values(event.columns.size());
      for (size_t i = 0; i < rows; ++i) {
        Table& t = (*tables)[static_cast<size_t>(*ingest_cursor % n)];
        for (size_t c = 0; c < event.columns.size(); ++c) {
          row_values[c] = event.columns[c][i];
        }
        AMNESIA_RETURN_NOT_OK(t.AppendRow(row_values).status());
        ++*ingest_cursor;
      }
      return Status::OK();
    }
    default:
      break;
  }

  if (event.shard >= n) {
    return Status::InvalidArgument("event addresses shard " +
                                   std::to_string(event.shard) + " of " +
                                   std::to_string(n));
  }
  Table& table = (*tables)[event.shard];
  // Row-addressed events validate before any table access: a log that does
  // not match the restored snapshot (or corruption that survives the frame
  // CRC) must surface as Status, never as an out-of-bounds read.
  if (event.kind != EventKind::kCompact && event.row >= table.num_rows()) {
    return Status::InvalidArgument("event row " + std::to_string(event.row) +
                                   " out of range for shard " +
                                   std::to_string(event.shard));
  }
  switch (event.kind) {
    case EventKind::kForget: {
      if (event.payload_col >= table.num_columns()) {
        return Status::InvalidArgument("event payload column out of range");
      }
      // Re-route into the tier before flipping the state, exactly like
      // AmnesiaController::ForgetOne captured it.
      const auto backend = static_cast<BackendKind>(event.backend);
      if (backend == BackendKind::kColdStorage && sinks.cold != nullptr) {
        sinks.cold->Put(ColdTuple{event.row,
                                  table.value(event.payload_col, event.row),
                                  table.insert_tick(event.row),
                                  table.batch_of(event.row)});
      } else if (backend == BackendKind::kSummary &&
                 sinks.summaries != nullptr) {
        sinks.summaries->AddForgotten(event.payload_col,
                                      table.batch_of(event.row),
                                      table.value(event.payload_col, event.row));
      }
      return table.Forget(event.row);
    }
    case EventKind::kScrub:
      return table.ScrubRow(event.row, event.value);
    case EventKind::kCompact:
      table.CompactForgotten();
      return Status::OK();
    case EventKind::kRevive:
      return table.Revive(event.row);
    case EventKind::kAccess:
      table.BumpAccess(event.row);
      return Status::OK();
    default:
      return Status::Internal("unhandled event kind");
  }
}

StatusOr<uint64_t> ReplayEvents(const std::vector<Event>& events,
                                uint64_t begin, std::vector<Table>* tables,
                                uint64_t* ingest_cursor,
                                const ReplaySinks& sinks) {
  uint64_t applied = 0;
  for (uint64_t i = begin; i < events.size(); ++i) {
    AMNESIA_RETURN_NOT_OK(ReplayEvent(events[i], tables, ingest_cursor, sinks));
    ++applied;
  }
  return applied;
}

// --------------------------------------------------------------- EventLog

StatusOr<EventLog> EventLog::Open(const std::string& path) {
  EventLog log;
  log.path_ = path;
  log.file_ = std::fopen(path.c_str(), "wb");
  if (log.file_ == nullptr) {
    return Status::Internal("cannot open event log '" + path + "'");
  }
  return log;
}

StatusOr<EventLog> EventLog::OpenForAppend(const std::string& path) {
  AMNESIA_ASSIGN_OR_RETURN(std::vector<Event> prefix, ReadEventLogFile(path));
  EventLog log;
  log.path_ = path;
  // Rewrite the valid prefix: a torn final frame must not precede new
  // appends, or the reader would stop in front of them forever.
  log.file_ = std::fopen(path.c_str(), "wb");
  if (log.file_ == nullptr) {
    return Status::Internal("cannot reopen event log '" + path + "'");
  }
  for (const Event& event : prefix) {
    AMNESIA_RETURN_NOT_OK(log.Append(event));
  }
  return log;
}

EventLog::~EventLog() {
  if (file_ != nullptr) std::fclose(file_);
}

EventLog::EventLog(EventLog&& other) noexcept {
  std::lock_guard<std::mutex> lock(other.mu_);
  events_ = std::move(other.events_);
  path_ = std::move(other.path_);
  file_ = other.file_;
  other.file_ = nullptr;
  other.path_.clear();
}

EventLog& EventLog::operator=(EventLog&& other) noexcept {
  if (this == &other) return *this;
  if (file_ != nullptr) std::fclose(file_);
  std::lock_guard<std::mutex> lock(other.mu_);
  events_ = std::move(other.events_);
  path_ = std::move(other.path_);
  file_ = other.file_;
  other.file_ = nullptr;
  other.path_.clear();
  return *this;
}

Status EventLog::Append(const Event& event) {
  std::lock_guard<std::mutex> lock(mu_);
  if (file_ != nullptr) {
    const std::vector<uint8_t> payload = EncodeEvent(event);
    std::vector<uint8_t> frame;
    ckpt::Writer w(&frame);
    w.U32(static_cast<uint32_t>(payload.size()));
    w.U32(ckpt::Crc32(payload));
    frame.insert(frame.end(), payload.begin(), payload.end());
    const size_t written =
        std::fwrite(frame.data(), 1, frame.size(), file_);
    if (written != frame.size() || std::fflush(file_) != 0) {
      return Status::Internal("event log append failed on '" + path_ + "'");
    }
  }
  events_.push_back(event);
  return Status::OK();
}

uint64_t EventLog::next_lsn() const {
  std::lock_guard<std::mutex> lock(mu_);
  return events_.size();
}

StatusOr<std::vector<Event>> ReadEventLogFile(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return Status::NotFound("cannot open event log '" + path + "'");
  }
  std::vector<Event> events;
  for (;;) {
    uint8_t header[8];
    const size_t got = std::fread(header, 1, sizeof(header), f);
    if (got != sizeof(header)) break;  // clean EOF or torn frame header
    uint32_t length = 0, crc = 0;
    std::memcpy(&length, header, sizeof(length));
    std::memcpy(&crc, header + 4, sizeof(crc));
    if (length > (64u << 20)) break;  // corrupt length; stop at the tear
    std::vector<uint8_t> payload(length);
    if (std::fread(payload.data(), 1, length, f) != length) break;
    if (ckpt::Crc32(payload) != crc) break;  // torn/corrupt record
    auto event = DecodeEvent(payload);
    if (!event.ok()) break;
    events.push_back(std::move(event).value());
  }
  std::fclose(f);
  return events;
}

}  // namespace amnesia
