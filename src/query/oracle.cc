// Copyright 2026 The AmnesiaDB Authors

#include "query/oracle.h"

#include <algorithm>
#include <limits>

namespace amnesia {

void GroundTruthOracle::Append(Value v) {
  if (values_.empty() && pending_.empty()) {
    max_seen_ = v;
    min_seen_ = v;
  } else {
    max_seen_ = std::max(max_seen_, v);
    min_seen_ = std::min(min_seen_, v);
  }
  pending_.push_back(v);
}

void GroundTruthOracle::Seal() {
  if (pending_.empty()) return;
  values_.insert(values_.end(), pending_.begin(), pending_.end());
  pending_.clear();
  std::sort(values_.begin(), values_.end());
  prefix_sum_.assign(values_.size() + 1, 0.0);
  prefix_sq_.assign(values_.size() + 1, 0.0);
  for (size_t i = 0; i < values_.size(); ++i) {
    const double v = static_cast<double>(values_[i]);
    prefix_sum_[i + 1] = prefix_sum_[i] + v;
    prefix_sq_[i + 1] = prefix_sq_[i] + v * v;
  }
}

StatusOr<uint64_t> GroundTruthOracle::CountRange(Value lo, Value hi) const {
  if (!sealed()) {
    return Status::FailedPrecondition("oracle has unsealed appends");
  }
  if (lo >= hi) return uint64_t{0};
  const auto first = std::lower_bound(values_.begin(), values_.end(), lo);
  const auto last = std::lower_bound(values_.begin(), values_.end(), hi);
  return static_cast<uint64_t>(last - first);
}

StatusOr<Value> GroundTruthOracle::ValueAt(uint64_t i) const {
  if (!sealed()) {
    return Status::FailedPrecondition("oracle has unsealed appends");
  }
  if (i >= values_.size()) {
    return Status::OutOfRange("oracle index out of range");
  }
  return values_[i];
}

StatusOr<AggregateResult> GroundTruthOracle::AggregateRange(Value lo,
                                                            Value hi) const {
  if (!sealed()) {
    return Status::FailedPrecondition("oracle has unsealed appends");
  }
  AggregateResult out;
  if (lo >= hi) return out;
  const auto begin = values_.begin();
  const size_t first =
      static_cast<size_t>(std::lower_bound(begin, values_.end(), lo) - begin);
  const size_t last =
      static_cast<size_t>(std::lower_bound(begin, values_.end(), hi) - begin);
  if (first >= last) return out;
  const uint64_t count = last - first;
  const double sum = prefix_sum_[last] - prefix_sum_[first];
  const double sq = prefix_sq_[last] - prefix_sq_[first];
  out.count = count;
  out.sum = sum;
  out.avg = sum / static_cast<double>(count);
  out.min = static_cast<double>(values_[first]);
  out.max = static_cast<double>(values_[last - 1]);
  out.variance = sq / static_cast<double>(count) - out.avg * out.avg;
  if (out.variance < 0.0) out.variance = 0.0;  // numeric guard
  return out;
}

}  // namespace amnesia
