// Copyright 2026 The AmnesiaDB Authors

#include "query/oracle.h"

#include <algorithm>
#include <atomic>
#include <limits>

#include "common/thread_pool.h"

namespace amnesia {

namespace {

/// Morsel size for parallel history scans; matches the table scan default.
constexpr uint64_t kOracleMorselRows = uint64_t{1} << 16;

uint64_t CountSlice(const std::vector<Value>& values, Value lo, Value hi,
                    ThreadPool& pool, size_t max_workers) {
  std::atomic<uint64_t> total{0};
  pool.ParallelFor(0, values.size(), kOracleMorselRows, max_workers,
                   [&](uint64_t begin, uint64_t end) {
                     uint64_t local = 0;
                     for (uint64_t i = begin; i < end; ++i) {
                       const Value v = values[i];
                       if (v >= lo && v < hi) ++local;
                     }
                     total.fetch_add(local, std::memory_order_relaxed);
                   });
  return total.load();
}

}  // namespace

void GroundTruthOracle::Append(Value v) {
  if (values_.empty() && pending_.empty()) {
    max_seen_ = v;
    min_seen_ = v;
  } else {
    max_seen_ = std::max(max_seen_, v);
    min_seen_ = std::min(min_seen_, v);
  }
  pending_.push_back(v);
}

void GroundTruthOracle::Seal() {
  if (pending_.empty()) return;
  values_.insert(values_.end(), pending_.begin(), pending_.end());
  pending_.clear();
  std::sort(values_.begin(), values_.end());
  prefix_sum_.assign(values_.size() + 1, 0.0);
  prefix_sq_.assign(values_.size() + 1, 0.0);
  for (size_t i = 0; i < values_.size(); ++i) {
    const double v = static_cast<double>(values_[i]);
    prefix_sum_[i + 1] = prefix_sum_[i] + v;
    prefix_sq_[i + 1] = prefix_sq_[i] + v * v;
  }
}

StatusOr<uint64_t> GroundTruthOracle::CountRange(Value lo, Value hi) const {
  if (!sealed()) {
    return Status::FailedPrecondition("oracle has unsealed appends");
  }
  if (lo >= hi) return uint64_t{0};
  const auto first = std::lower_bound(values_.begin(), values_.end(), lo);
  const auto last = std::lower_bound(values_.begin(), values_.end(), hi);
  return static_cast<uint64_t>(last - first);
}

uint64_t GroundTruthOracle::CountRangeParallel(Value lo, Value hi,
                                               ThreadPool& pool,
                                               size_t max_workers) const {
  if (lo >= hi) return 0;
  return CountSlice(values_, lo, hi, pool, max_workers) +
         CountSlice(pending_, lo, hi, pool, max_workers);
}

StatusOr<Value> GroundTruthOracle::ValueAt(uint64_t i) const {
  if (!sealed()) {
    return Status::FailedPrecondition("oracle has unsealed appends");
  }
  if (i >= values_.size()) {
    return Status::OutOfRange("oracle index out of range");
  }
  return values_[i];
}

StatusOr<AggregateResult> GroundTruthOracle::AggregateRange(Value lo,
                                                            Value hi) const {
  if (!sealed()) {
    return Status::FailedPrecondition("oracle has unsealed appends");
  }
  AggregateResult out;
  if (lo >= hi) return out;
  const auto begin = values_.begin();
  const size_t first =
      static_cast<size_t>(std::lower_bound(begin, values_.end(), lo) - begin);
  const size_t last =
      static_cast<size_t>(std::lower_bound(begin, values_.end(), hi) - begin);
  if (first >= last) return out;
  const uint64_t count = last - first;
  const double sum = prefix_sum_[last] - prefix_sum_[first];
  const double sq = prefix_sq_[last] - prefix_sq_[first];
  out.count = count;
  out.sum = sum;
  out.avg = sum / static_cast<double>(count);
  out.min = static_cast<double>(values_[first]);
  out.max = static_cast<double>(values_[last - 1]);
  out.variance = sq / static_cast<double>(count) - out.avg * out.avg;
  if (out.variance < 0.0) out.variance = 0.0;  // numeric guard
  return out;
}

}  // namespace amnesia
