// Copyright 2026 The AmnesiaDB Authors
//
// Vectorized batch-at-a-time scan kernels. The scalar scan path evaluates
// RangePredicate::Matches per Value cell inside a branchy row loop; these
// kernels instead process one morsel's contiguous column slice at a time:
//
//   1. a branch-free range-predicate kernel fills a per-morsel selection
//      bitmap (one bit per row, auto-vectorizable compares, no per-row
//      branches);
//   2. the selection bitmap is ANDed word-at-a-time against the table's
//      visibility (active) bitmap — all three Visibility modes reduce to
//      AND, no-op, or AND-NOT;
//   3. accumulation kernels fold COUNT (popcount), MIN/MAX/SUM (masked
//      lane arithmetic for dense words, set-bit iteration for sparse
//      words) over the selected lanes, or materialize the selected rows.
//
// A fully-forgotten morsel (live count 0 under kActiveOnly) is skipped
// before any kernel runs — the amnesia-aware fast path: the more a table
// has forgotten, the less of it a scan touches.
//
// Equivalence contract with the scalar kernels (the cross-check oracle):
// ScanRange rows/values, CountRange, and aggregate COUNT/MIN/MAX are
// bit-identical; SUM/AVG/variance agree up to FP reassociation because the
// scalar path folds through Welford accumulation while the kernels sum
// directly.

#ifndef AMNESIA_QUERY_VECTOR_KERNELS_H_
#define AMNESIA_QUERY_VECTOR_KERNELS_H_

#include <cstdint>
#include <limits>
#include <vector>

#include "common/bitmap.h"
#include "common/status.h"
#include "query/predicate.h"
#include "query/result.h"
#include "query/scan.h"
#include "storage/table.h"

namespace amnesia {

/// Returns the number of 64-bit selection words covering `lanes` rows.
inline uint64_t SelectionWordCount(uint64_t lanes) {
  return (lanes + 63) / 64;
}

/// \brief A per-morsel selection bitmap: bit i marks row morsel.begin + i
/// as selected. Backed by a grow-only word buffer so one instance can be
/// reused across every morsel of a scan without reallocating.
class SelectionVector {
 public:
  /// Resizes to `lanes` bits, all clear. Keeps capacity across calls.
  void Reset(uint64_t lanes) {
    lanes_ = lanes;
    words_.assign(SelectionWordCount(lanes), 0);
  }

  /// Returns the number of lanes (rows) covered.
  uint64_t lanes() const { return lanes_; }
  /// Returns the number of backing words.
  uint64_t word_count() const { return words_.size(); }
  /// Mutable word access. Bits past lanes() must stay zero.
  uint64_t* words() { return words_.data(); }
  /// Read-only word access.
  const uint64_t* words() const { return words_.data(); }

  /// Returns true iff lane `i` is selected. Precondition: i < lanes().
  bool Test(uint64_t i) const {
    return (words_[i >> 6] >> (i & 63)) & 1u;
  }

  /// Returns the number of selected lanes (popcount over the words; tail
  /// bits are zero by construction).
  uint64_t CountSet() const;

 private:
  std::vector<uint64_t> words_;
  uint64_t lanes_ = 0;
};

/// \brief Reusable scratch buffers for one scan thread: the selection
/// bitmap plus the extracted visibility words. The per-morsel kernels take
/// one of these so parallel workers never share state and serial scans
/// never reallocate per morsel.
struct VectorScanContext {
  SelectionVector sel;
  std::vector<uint64_t> visibility_words;
};

// ----------------------------------------------------------- kernels

/// Fills `sel` with the range predicate lo <= v < hi over the `n` values
/// at `data`: branch-free, one unsigned compare per lane (uint64(v) -
/// uint64(lo) < unsigned span), packed 64 lanes per word. An empty range
/// yields an all-clear selection.
void SelectRange(const Value* data, uint64_t n, Value lo, Value hi,
                 SelectionVector* sel);

/// ANDs visibility into `sel` for the rows [first, first + sel->lanes()):
/// kAll is a no-op, kActiveOnly keeps lanes whose `active` bit is set,
/// kForgottenOnly keeps lanes whose bit is clear. `scratch` receives the
/// word-realigned visibility slice.
void ApplyVisibility(const Bitmap& active, RowId first, Visibility visibility,
                     SelectionVector* sel, std::vector<uint64_t>* scratch);

/// Returns the number of live (active) rows in [morsel.begin, morsel.end)
/// — the skip check run before any kernel: 0 under kActiveOnly (or
/// morsel.size() under kForgottenOnly) means no kernel needs to run.
uint64_t MorselLiveCount(const Table& table, Morsel morsel);

/// \brief Aggregate accumulator of the vectorized kernels: direct
/// count/sum/sum-of-squares plus integer-domain extrema. Associative, so
/// per-morsel partials merge in morsel order exactly like RunningStats.
/// MIN/MAX finish bit-identical to the scalar path (int64 -> double is
/// monotonic); SUM/AVG/variance differ from Welford only by FP
/// reassociation.
struct VectorAggState {
  uint64_t count = 0;
  double sum = 0.0;
  double sum_sq = 0.0;
  Value min = std::numeric_limits<Value>::max();
  Value max = std::numeric_limits<Value>::min();

  /// Folds another partial into this one (morsel-order merge).
  void Merge(const VectorAggState& other);

  /// Converts to the public aggregate shape; empty input yields the same
  /// +inf/-inf extrema as an empty RunningStats.
  AggregateResult Finish() const;
};

/// Accumulates COUNT/SUM/MIN/MAX/sum-of-squares over the selected lanes of
/// `data` into `agg`: all-ones words take a dense unmasked lane loop
/// (auto-vectorizable), sparse words iterate set bits, all-zero words are
/// skipped.
void AccumulateSelected(const Value* data, const SelectionVector& sel,
                        VectorAggState* agg);

/// Appends the selected rows to `out`: RowId first + lane for the row ids,
/// data[lane] for the values, in ascending lane order.
void EmitSelected(const Value* data, const SelectionVector& sel, RowId first,
                  ResultSet* out);

/// Computes a whole unmasked value vector's aggregates with the dense
/// lane kernel — the executor's vectorized fold for index-plan results.
VectorAggState AggregateValues(const std::vector<Value>& values);

// ------------------------------------------------- per-morsel operators

/// Runs the full selection pipeline (skip check, predicate kernel,
/// visibility AND) for one morsel into ctx->sel. Returns false when the
/// morsel was skipped wholesale (ctx->sel is left empty: zero lanes).
bool SelectMorsel(const Table& table, const RangePredicate& pred,
                  Visibility visibility, Morsel morsel,
                  VectorScanContext* ctx);

/// Vectorized per-morsel COUNT: selection pipeline + popcount.
uint64_t CountMorselVectorized(const Table& table, const RangePredicate& pred,
                               Visibility visibility, Morsel morsel,
                               VectorScanContext* ctx);

/// Vectorized per-morsel scan: appends matching rows to `out` in
/// ascending RowId order (bit-identical to the scalar morsel kernel).
void ScanMorselVectorized(const Table& table, const RangePredicate& pred,
                          Visibility visibility, Morsel morsel,
                          VectorScanContext* ctx, ResultSet* out);

/// Vectorized per-morsel aggregation over the selected lanes.
VectorAggState AggregateMorselVectorized(const Table& table,
                                         const RangePredicate& pred,
                                         Visibility visibility, Morsel morsel,
                                         VectorScanContext* ctx);

/// Returns this thread's reusable scan context (thread-local, so the
/// morsel-parallel workers each get their own buffers).
VectorScanContext& ThreadLocalScanContext();

// ------------------------------------------------- conjunction plans

/// \brief A conjunction of range predicates, each over its own column —
/// the multi-predicate plan shape: per-predicate selection bitmaps ANDed
/// per morsel, with an early exit as soon as a morsel's selection drains
/// to empty.
struct ConjunctionPlan {
  std::vector<RangePredicate> preds;

  /// Returns InvalidArgument when any predicate names a column the table
  /// does not have.
  Status Validate(const Table& table) const;

  /// Scalar reference semantics: true when `row` satisfies every
  /// predicate (vacuously true for an empty plan).
  bool Matches(const Table& table, RowId row) const {
    for (const RangePredicate& p : preds) {
      if (!p.Matches(table.value(p.col, row))) return false;
    }
    return true;
  }
};

/// Selection pipeline for a conjunction over one morsel: evaluates the
/// first predicate into ctx->sel, ANDs each further predicate's bitmap,
/// then ANDs visibility. Returns false when the morsel was skipped or the
/// selection drained to empty before visibility.
bool SelectConjunctionMorsel(const Table& table, const ConjunctionPlan& plan,
                             Visibility visibility, Morsel morsel,
                             VectorScanContext* ctx);

/// Scans the table for rows satisfying every predicate of `plan` under
/// `visibility`. Engine::kScalar runs the row-at-a-time reference loop
/// (the cross-check oracle); Engine::kVectorized runs the batched
/// bitmap-AND pipeline. Both return ascending RowIds with the values of
/// the FIRST predicate's column (an empty plan selects every visible row
/// of column 0).
StatusOr<ResultSet> ScanConjunction(const Table& table,
                                    const ConjunctionPlan& plan,
                                    Visibility visibility,
                                    Engine engine = Engine::kVectorized);

/// Counts rows satisfying every predicate of `plan` under `visibility`.
StatusOr<uint64_t> CountConjunction(const Table& table,
                                    const ConjunctionPlan& plan,
                                    Visibility visibility,
                                    Engine engine = Engine::kVectorized);

/// Aggregates the first predicate's column over rows satisfying every
/// predicate of `plan` under `visibility` (column 0 for an empty plan).
StatusOr<AggregateResult> AggregateConjunction(
    const Table& table, const ConjunctionPlan& plan, Visibility visibility,
    Engine engine = Engine::kVectorized);

}  // namespace amnesia

#endif  // AMNESIA_QUERY_VECTOR_KERNELS_H_
