// Copyright 2026 The AmnesiaDB Authors
//
// Full-scan operators. Visibility is explicit: the paper's central point is
// that a complete scan can still fetch forgotten-but-present tuples, while
// amnesia-aware plans only see active ones.
//
// Each operator has a serial form and a morsel-parallel form. The parallel
// forms partition the table into disjoint RowId morsels, scan them on a
// ThreadPool, and merge per-morsel results in morsel order, so row output
// order is identical to the serial scan and COUNT/MIN/MAX are bit-identical
// (SUM/AVG/variance can differ by FP reassociation only).
//
// Every operator additionally takes an Engine: kScalar runs the original
// tuple-at-a-time row loops, kVectorized runs the batch-at-a-time kernels
// of query/vector_kernels.h (branch-free selection bitmaps ANDed against
// the visibility bitmap, with fully-forgotten morsels skipped wholesale).
// Both engines return the same rows in the same order; COUNT/MIN/MAX are
// bit-identical across engines, SUM/AVG/variance agree up to FP
// reassociation (scalar folds through Welford, vectorized sums directly).

#ifndef AMNESIA_QUERY_SCAN_H_
#define AMNESIA_QUERY_SCAN_H_

#include "common/stats.h"
#include "common/status.h"
#include "common/thread_pool.h"
#include "query/predicate.h"
#include "query/result.h"
#include "storage/sharded_table.h"
#include "storage/table.h"

namespace amnesia {

/// \brief Which tuples a scan may observe.
enum class Visibility : int {
  kActiveOnly = 0,     ///< Amnesic view: forgotten tuples are invisible.
  kAll = 1,            ///< Physical view: everything still in storage.
  kForgottenOnly = 2,  ///< Only marked-forgotten tuples (diagnostics).
};

/// \brief Which execution engine a scan operator runs.
enum class Engine : int {
  kScalar = 0,      ///< Tuple-at-a-time row loops (the cross-check oracle).
  kVectorized = 1,  ///< Batch-at-a-time selection-bitmap kernels.
};

/// \brief Converts a finished accumulator into the aggregate result shape.
/// The single definition of that mapping, shared by the serial kernel, the
/// parallel merge, and the executor's index-plan fold.
AggregateResult ToAggregateResult(const RunningStats& stats);

/// \brief Scans `table` for rows matching `pred` under `visibility`.
/// Returns rows in ascending RowId order.
StatusOr<ResultSet> ScanRange(const Table& table, const RangePredicate& pred,
                              Visibility visibility,
                              Engine engine = Engine::kScalar);

/// \brief Counts matching rows without materializing them.
StatusOr<uint64_t> CountRange(const Table& table, const RangePredicate& pred,
                              Visibility visibility,
                              Engine engine = Engine::kScalar);

/// \brief Computes all aggregates over matching rows in one pass.
StatusOr<AggregateResult> AggregateRange(const Table& table,
                                         const RangePredicate& pred,
                                         Visibility visibility,
                                         Engine engine = Engine::kScalar);

/// \brief Morsel-parallel ScanRange. Returns exactly the rows and values of
/// the serial scan, in the same (ascending RowId) order. `max_workers`
/// caps the scan width below the pool size (0 = whole pool); the serial
/// kernel is used when the effective width is 1 or the table fits in one
/// morsel.
StatusOr<ResultSet> ScanRangeParallel(const Table& table,
                                      const RangePredicate& pred,
                                      Visibility visibility, ThreadPool& pool,
                                      uint64_t morsel_rows = kDefaultMorselRows,
                                      size_t max_workers = 0,
                                      Engine engine = Engine::kScalar);

/// \brief Morsel-parallel CountRange; bit-identical to the serial count.
StatusOr<uint64_t> CountRangeParallel(const Table& table,
                                      const RangePredicate& pred,
                                      Visibility visibility, ThreadPool& pool,
                                      uint64_t morsel_rows = kDefaultMorselRows,
                                      size_t max_workers = 0,
                                      Engine engine = Engine::kScalar);

/// \brief Morsel-parallel AggregateRange. Partial accumulators are merged
/// associatively in morsel order (Chan et al.), so COUNT/MIN/MAX match the
/// serial kernel exactly and SUM/AVG/variance match up to FP reassociation.
StatusOr<AggregateResult> AggregateRangeParallel(
    const Table& table, const RangePredicate& pred, Visibility visibility,
    ThreadPool& pool, uint64_t morsel_rows = kDefaultMorselRows,
    size_t max_workers = 0, Engine engine = Engine::kScalar);

// Sharded-table overloads. Each shard is scanned with the exact same
// per-morsel kernels as the unsharded operators and per-shard results are
// merged in shard-major order (ascending global RowId order), so a
// single-shard table produces bit-identical rows, COUNT, MIN and MAX to
// the unsharded serial kernels, and any shard count preserves the
// COUNT/MIN/MAX of the same physical rows (SUM/AVG/variance up to FP
// reassociation).

/// \brief Scans every shard of `table` for rows matching `pred` under
/// `visibility`. Returns global RowIds in shard-major (ascending global
/// RowId) order.
StatusOr<ResultSet> ScanRange(const ShardedTable& table,
                              const RangePredicate& pred,
                              Visibility visibility,
                              Engine engine = Engine::kScalar);

/// \brief Counts matching rows across all shards.
StatusOr<uint64_t> CountRange(const ShardedTable& table,
                              const RangePredicate& pred,
                              Visibility visibility,
                              Engine engine = Engine::kScalar);

/// \brief Computes all aggregates over matching rows across all shards.
StatusOr<AggregateResult> AggregateRange(const ShardedTable& table,
                                         const RangePredicate& pred,
                                         Visibility visibility,
                                         Engine engine = Engine::kScalar);

/// \brief Morsel-parallel sharded ScanRange: workers consume shard-local
/// morsel streams (no morsel spans two shards), results merge in
/// shard-major order — exactly the serial sharded scan's output.
StatusOr<ResultSet> ScanRangeParallel(const ShardedTable& table,
                                      const RangePredicate& pred,
                                      Visibility visibility, ThreadPool& pool,
                                      uint64_t morsel_rows = kDefaultMorselRows,
                                      size_t max_workers = 0,
                                      Engine engine = Engine::kScalar);

/// \brief Morsel-parallel sharded CountRange; bit-identical to the serial
/// sharded count.
StatusOr<uint64_t> CountRangeParallel(const ShardedTable& table,
                                      const RangePredicate& pred,
                                      Visibility visibility, ThreadPool& pool,
                                      uint64_t morsel_rows = kDefaultMorselRows,
                                      size_t max_workers = 0,
                                      Engine engine = Engine::kScalar);

/// \brief Morsel-parallel sharded AggregateRange; COUNT/MIN/MAX match the
/// serial sharded kernel exactly, SUM/AVG/variance up to FP reassociation.
StatusOr<AggregateResult> AggregateRangeParallel(
    const ShardedTable& table, const RangePredicate& pred,
    Visibility visibility, ThreadPool& pool,
    uint64_t morsel_rows = kDefaultMorselRows, size_t max_workers = 0,
    Engine engine = Engine::kScalar);

}  // namespace amnesia

#endif  // AMNESIA_QUERY_SCAN_H_
