// Copyright 2026 The AmnesiaDB Authors
//
// Full-scan operators. Visibility is explicit: the paper's central point is
// that a complete scan can still fetch forgotten-but-present tuples, while
// amnesia-aware plans only see active ones.

#ifndef AMNESIA_QUERY_SCAN_H_
#define AMNESIA_QUERY_SCAN_H_

#include "common/status.h"
#include "query/predicate.h"
#include "query/result.h"
#include "storage/table.h"

namespace amnesia {

/// \brief Which tuples a scan may observe.
enum class Visibility : int {
  kActiveOnly = 0,     ///< Amnesic view: forgotten tuples are invisible.
  kAll = 1,            ///< Physical view: everything still in storage.
  kForgottenOnly = 2,  ///< Only marked-forgotten tuples (diagnostics).
};

/// \brief Scans `table` for rows matching `pred` under `visibility`.
/// Returns rows in ascending RowId order.
StatusOr<ResultSet> ScanRange(const Table& table, const RangePredicate& pred,
                              Visibility visibility);

/// \brief Counts matching rows without materializing them.
StatusOr<uint64_t> CountRange(const Table& table, const RangePredicate& pred,
                              Visibility visibility);

/// \brief Computes all aggregates over matching rows in one pass.
StatusOr<AggregateResult> AggregateRange(const Table& table,
                                         const RangePredicate& pred,
                                         Visibility visibility);

}  // namespace amnesia

#endif  // AMNESIA_QUERY_SCAN_H_
