// Copyright 2026 The AmnesiaDB Authors
//
// Predicates for the paper's query subspace: SELECT-PROJECT over one table
// with half-open range restrictions (§2.2 "simple range queries ...
// controlled by a selectivity factor S").

#ifndef AMNESIA_QUERY_PREDICATE_H_
#define AMNESIA_QUERY_PREDICATE_H_

#include <limits>

#include "storage/types.h"

namespace amnesia {

/// \brief Half-open value range restriction on one column: lo <= v < hi.
struct RangePredicate {
  size_t col = 0;
  Value lo = std::numeric_limits<Value>::min();
  Value hi = std::numeric_limits<Value>::max();

  /// Returns true when `v` satisfies the predicate.
  bool Matches(Value v) const { return v >= lo && v < hi; }

  /// Returns a predicate matching every value of column `col`.
  static RangePredicate All(size_t col) { return RangePredicate{col, std::numeric_limits<Value>::min(), std::numeric_limits<Value>::max()}; }

  /// Returns true when the range is empty.
  bool Empty() const { return lo >= hi; }

  /// Returns the unsigned span hi - lo of a non-empty range, computed in
  /// the uint64 domain. The subtraction must stay unsigned: `hi - lo` in
  /// Value arithmetic is signed overflow (UB) whenever the operands sit
  /// at opposite domain extremes (lo = Value::min(), hi = Value::max()),
  /// while converting first makes the wraparound well-defined and exact —
  /// the full domain measures 2^64 - 1. Precondition: !Empty(). This is
  /// also the comparison constant of the vectorized one-compare predicate
  /// kernel: lo <= v < hi iff uint64(v) - uint64(lo) < UnsignedSpan().
  uint64_t UnsignedSpan() const {
    return static_cast<uint64_t>(hi) - static_cast<uint64_t>(lo);
  }

  /// Returns the width of the range: 0 when empty, otherwise the exact
  /// value count, up to 2^64 - 1 for [Value::min(), Value::max()).
  uint64_t Width() const { return Empty() ? 0 : UnsignedSpan(); }
};

}  // namespace amnesia

#endif  // AMNESIA_QUERY_PREDICATE_H_
