// Copyright 2026 The AmnesiaDB Authors

#include "query/vector_kernels.h"

#include <algorithm>
#include <cstring>
#include <limits>

#include "obs/engine_metrics.h"

#if defined(__AVX512F__) && defined(__AVX512DQ__)
#include <immintrin.h>
#endif

namespace amnesia {

namespace {

// Per-morsel metric notes. One relaxed increment pair per ~64K-row morsel
// — invisible next to the kernel work it brackets. Compiled out entirely
// under AMNESIA_NO_METRICS (not even the registry lookup remains).
inline void NoteMorselScanned(uint64_t rows) {
#if !defined(AMNESIA_NO_METRICS)
  obs::EngineMetrics& m = obs::EngineMetrics::Get();
  m.scan_morsels_scanned->Inc();
  m.scan_rows_scanned->Inc(rows);
#else
  (void)rows;
#endif
}

inline void NoteMorselSkipped() {
#if !defined(AMNESIA_NO_METRICS)
  obs::EngineMetrics::Get().scan_morsels_skipped->Inc();
#endif
}

constexpr uint64_t kAllOnes = ~uint64_t{0};

// Lanes packed per selection word; the dense/sparse dispatch unit.
constexpr uint64_t kLanesPerWord = 64;

inline uint64_t PopCount(uint64_t word) {
  return static_cast<uint64_t>(__builtin_popcountll(word));
}

// Evaluates the one-compare range test over 64 lanes and packs the results
// into one selection word. Two stages keep it branch-free AND fast: the
// compare loop stores 0/1 bytes (auto-vectorizable, no cross-lane
// dependency), then each 8-byte chunk collapses to 8 bits with the
// multiply-pack trick ((chunk * 0x0102040810204080) >> 56 places byte g's
// 0/1 at bit g; bytes are 0/1 so the partial products never carry). A
// single `word |= cond << b` loop would instead serialize 64 variable
// shifts through one accumulator — ~4x slower.
inline uint64_t PackSelectWord(const Value* lanes, uint64_t ulo,
                               uint64_t span) {
  uint8_t m[kLanesPerWord];
  for (uint64_t b = 0; b < kLanesPerWord; ++b) {
    m[b] = static_cast<uint8_t>(static_cast<uint64_t>(lanes[b]) - ulo < span);
  }
  uint64_t word = 0;
  for (uint64_t g = 0; g < 8; ++g) {
    uint64_t chunk;
    std::memcpy(&chunk, m + g * 8, sizeof(chunk));
    word |= ((chunk * 0x0102040810204080ull) >> 56) << (g * 8);
  }
  return word;
}

// Dense unmasked accumulation over one full word's 64 lanes: no mask
// reads, so the compiler vectorizes the sum/extrema reductions.
inline void AccumulateDense64(const Value* lanes, VectorAggState* agg) {
  double sum = 0.0;
  double sum_sq = 0.0;
  Value lo = lanes[0];
  Value hi = lanes[0];
  for (uint64_t b = 0; b < kLanesPerWord; ++b) {
    const Value v = lanes[b];
    const double dv = static_cast<double>(v);
    sum += dv;
    sum_sq += dv * dv;
    lo = std::min(lo, v);
    hi = std::max(hi, v);
  }
  agg->count += kLanesPerWord;
  agg->sum += sum;
  agg->sum_sq += sum_sq;
  agg->min = std::min(agg->min, lo);
  agg->max = std::max(agg->max, hi);
}

// Sparse accumulation: set-bit iteration touches only selected lanes.
inline void AccumulateSparse(const Value* lanes, uint64_t word,
                             VectorAggState* agg) {
  while (word != 0) {
    const uint64_t b = static_cast<uint64_t>(__builtin_ctzll(word));
    const Value v = lanes[b];
    const double dv = static_cast<double>(v);
    agg->sum += dv;
    agg->sum_sq += dv * dv;
    agg->min = std::min(agg->min, v);
    agg->max = std::max(agg->max, v);
    ++agg->count;
    word &= word - 1;
  }
}

// Fused select+accumulate over [data, data+n): evaluates the range test
// word-at-a-time, ANDs the pre-extracted visibility words (`vis` null for
// kAll, `invert` for kForgottenOnly) and accumulates the surviving lanes
// while they are still hot in registers/L1 — the aggregate never
// materializes a selection bitmap or re-reads the column slice.
#if defined(__AVX512F__) && defined(__AVX512DQ__)
// AVX-512 form: the visibility word doubles as the lane write-mask, so the
// predicate compare (vpcmpuq), the sum/sum-of-squares FMAs and the
// int64-domain extrema (vpminsq/vpmaxsq) are all single masked
// instructions per 8 lanes — no bit unpacking, no per-selected-lane
// scatter/gather. Lane-parallel partial sums reassociate the additions
// (callers tolerate that for sum/avg/variance); count/min/max stay exact.
// GCC's masked-intrinsic wrappers feed _mm512_undefined_* merge sources
// to the builtins, which trips -Wmaybe-uninitialized false positives once
// inlined here.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmaybe-uninitialized"
void FusedAggregateRange(const Value* data, uint64_t n, uint64_t ulo,
                         uint64_t span, const uint64_t* vis, bool invert,
                         VectorAggState* agg) {
  const __m512i vlo = _mm512_set1_epi64(static_cast<long long>(ulo));
  const __m512i vspan = _mm512_set1_epi64(static_cast<long long>(span));
  __m512d vsum = _mm512_setzero_pd();
  __m512d vsq = _mm512_setzero_pd();
  __m512i vmin = _mm512_set1_epi64(std::numeric_limits<Value>::max());
  __m512i vmax = _mm512_set1_epi64(std::numeric_limits<Value>::min());
  uint64_t count = 0;
  const uint64_t full = n / kLanesPerWord;
  for (uint64_t w = 0; w < full; ++w) {
    uint64_t visw = kAllOnes;
    if (vis != nullptr) visw = invert ? ~vis[w] : vis[w];
    if (visw == 0) continue;
    const Value* lanes = data + w * kLanesPerWord;
    for (uint64_t g = 0; g < 8; ++g) {
      const __mmask8 kvis = static_cast<__mmask8>(visw >> (g * 8));
      if (kvis == 0) continue;
      const __m512i v = _mm512_loadu_si512(lanes + g * 8);
      const __mmask8 k = _mm512_mask_cmplt_epu64_mask(
          kvis, _mm512_sub_epi64(v, vlo), vspan);
      // No k == 0 early-out: at mid selectivities that branch is
      // unpredictable and the mispredicts cost more than the masked
      // accumulation ops, which are no-ops under an all-zero mask anyway.
      count += PopCount(k);
      const __m512d vd = _mm512_cvtepi64_pd(v);
      vsum = _mm512_mask_add_pd(vsum, k, vsum, vd);
      vsq = _mm512_mask3_fmadd_pd(vd, vd, vsq, k);
      vmin = _mm512_mask_min_epi64(vmin, k, vmin, v);
      vmax = _mm512_mask_max_epi64(vmax, k, vmax, v);
    }
  }
  agg->count += count;
  agg->sum += _mm512_reduce_add_pd(vsum);
  agg->sum_sq += _mm512_reduce_add_pd(vsq);
  agg->min = std::min(agg->min,
                      static_cast<Value>(_mm512_reduce_min_epi64(vmin)));
  agg->max = std::max(agg->max,
                      static_cast<Value>(_mm512_reduce_max_epi64(vmax)));
  const uint64_t rem = n - full * kLanesPerWord;
  if (rem != 0) {
    const Value* lanes = data + full * kLanesPerWord;
    uint64_t word = 0;
    for (uint64_t b = 0; b < rem; ++b) {
      word |= static_cast<uint64_t>(
                  static_cast<uint64_t>(lanes[b]) - ulo < span)
              << b;
    }
    // Only bits below rem are set, so the inverted visibility word's
    // stray tail ones cannot leak in.
    if (vis != nullptr) word &= invert ? ~vis[full] : vis[full];
    AccumulateSparse(lanes, word, agg);
  }
}
#pragma GCC diagnostic pop
#else
void FusedAggregateRange(const Value* data, uint64_t n, uint64_t ulo,
                         uint64_t span, const uint64_t* vis, bool invert,
                         VectorAggState* agg) {
  const uint64_t full = n / kLanesPerWord;
  for (uint64_t w = 0; w < full; ++w) {
    const Value* lanes = data + w * kLanesPerWord;
    uint64_t word = PackSelectWord(lanes, ulo, span);
    if (vis != nullptr) word &= invert ? ~vis[w] : vis[w];
    if (word == 0) continue;
    if (word == kAllOnes) {
      AccumulateDense64(lanes, agg);
    } else {
      AccumulateSparse(lanes, word, agg);
    }
  }
  const uint64_t rem = n - full * kLanesPerWord;
  if (rem != 0) {
    const Value* lanes = data + full * kLanesPerWord;
    uint64_t word = 0;
    for (uint64_t b = 0; b < rem; ++b) {
      word |= static_cast<uint64_t>(
                  static_cast<uint64_t>(lanes[b]) - ulo < span)
              << b;
    }
    // Only bits below rem are set, so the inverted visibility word's
    // stray tail ones cannot leak in.
    if (vis != nullptr) word &= invert ? ~vis[full] : vis[full];
    AccumulateSparse(lanes, word, agg);
  }
}
#endif

// Fused select+popcount over [data, data+n): same structure as
// FusedAggregateRange but the only accumulator is the match count, so no
// selection bitmap is ever written back to memory.
uint64_t FusedCountRange(const Value* data, uint64_t n, uint64_t ulo,
                         uint64_t span, const uint64_t* vis, bool invert) {
  uint64_t count = 0;
  const uint64_t full = n / kLanesPerWord;
  for (uint64_t w = 0; w < full; ++w) {
    uint64_t visw = kAllOnes;
    if (vis != nullptr) visw = invert ? ~vis[w] : vis[w];
    if (visw == 0) continue;
    const Value* lanes = data + w * kLanesPerWord;
#if defined(__AVX512F__) && defined(__AVX512DQ__)
    const __m512i vlo = _mm512_set1_epi64(static_cast<long long>(ulo));
    const __m512i vspan = _mm512_set1_epi64(static_cast<long long>(span));
    uint64_t word = 0;
    for (uint64_t g = 0; g < 8; ++g) {
      const __mmask8 kvis = static_cast<__mmask8>(visw >> (g * 8));
      const __m512i v = _mm512_loadu_si512(lanes + g * 8);
      const __mmask8 k = _mm512_mask_cmplt_epu64_mask(
          kvis, _mm512_sub_epi64(v, vlo), vspan);
      word |= static_cast<uint64_t>(k) << (g * 8);
    }
    count += PopCount(word);
#else
    count += PopCount(PackSelectWord(lanes, ulo, span) & visw);
#endif
  }
  const uint64_t rem = n - full * kLanesPerWord;
  if (rem != 0) {
    const Value* lanes = data + full * kLanesPerWord;
    uint64_t word = 0;
    for (uint64_t b = 0; b < rem; ++b) {
      word |= static_cast<uint64_t>(
                  static_cast<uint64_t>(lanes[b]) - ulo < span)
              << b;
    }
    if (vis != nullptr) word &= invert ? ~vis[full] : vis[full];
    count += PopCount(word);
  }
  return count;
}

// ANDs the second predicate's bitmap for [data, data+n) into sel's words
// without materializing a second SelectionVector: evaluates 64 lanes into
// a local word, then sel_word &= word.
void AndSelectRange(const Value* data, uint64_t n, Value lo, Value hi,
                    uint64_t* sel_words) {
  if (lo >= hi) {
    const uint64_t words = SelectionWordCount(n);
    for (uint64_t w = 0; w < words; ++w) sel_words[w] = 0;
    return;
  }
  const uint64_t ulo = static_cast<uint64_t>(lo);
  const uint64_t span = static_cast<uint64_t>(hi) - ulo;
  const uint64_t full = n / kLanesPerWord;
  for (uint64_t w = 0; w < full; ++w) {
    sel_words[w] &= PackSelectWord(data + w * kLanesPerWord, ulo, span);
  }
  if (full * kLanesPerWord < n) {
    uint64_t tail = 0;
    for (uint64_t i = full * kLanesPerWord; i < n; ++i) {
      tail |= static_cast<uint64_t>(
                  static_cast<uint64_t>(data[i]) - ulo < span)
              << (i & 63);
    }
    sel_words[full] &= tail;
  }
}

}  // namespace

uint64_t SelectionVector::CountSet() const {
  uint64_t count = 0;
  for (uint64_t w : words_) count += PopCount(w);
  return count;
}

void SelectRange(const Value* data, uint64_t n, Value lo, Value hi,
                 SelectionVector* sel) {
  sel->Reset(n);
  if (lo >= hi || n == 0) return;
  uint64_t* words = sel->words();
  // One-compare range test: lo <= v < hi iff uint64(v) - uint64(lo) <
  // uint64(hi) - uint64(lo). The subtractions wrap (well-defined in the
  // unsigned domain) and the equivalence holds across the full signed
  // domain, including lo = Value::min() / hi = Value::max().
  const uint64_t ulo = static_cast<uint64_t>(lo);
  const uint64_t span = static_cast<uint64_t>(hi) - ulo;
  const uint64_t full = n / kLanesPerWord;
  for (uint64_t w = 0; w < full; ++w) {
    words[w] = PackSelectWord(data + w * kLanesPerWord, ulo, span);
  }
  for (uint64_t i = full * kLanesPerWord; i < n; ++i) {
    words[i >> 6] |= static_cast<uint64_t>(
                         static_cast<uint64_t>(data[i]) - ulo < span)
                     << (i & 63);
  }
}

void ApplyVisibility(const Bitmap& active, RowId first, Visibility visibility,
                     SelectionVector* sel, std::vector<uint64_t>* scratch) {
  if (visibility == Visibility::kAll || sel->lanes() == 0) return;
  scratch->resize(sel->word_count());
  active.ExtractWords(first, first + sel->lanes(), scratch->data());
  uint64_t* words = sel->words();
  const uint64_t* vis = scratch->data();
  const uint64_t n = sel->word_count();
  if (visibility == Visibility::kActiveOnly) {
    for (uint64_t w = 0; w < n; ++w) words[w] &= vis[w];
  } else {
    // kForgottenOnly: selection tail bits are already zero, so the
    // complement's stray tail ones cannot leak in.
    for (uint64_t w = 0; w < n; ++w) words[w] &= ~vis[w];
  }
}

uint64_t MorselLiveCount(const Table& table, Morsel morsel) {
  return table.active_bitmap().CountSetRange(morsel.begin, morsel.end);
}

void VectorAggState::Merge(const VectorAggState& other) {
  count += other.count;
  sum += other.sum;
  sum_sq += other.sum_sq;
  min = std::min(min, other.min);
  max = std::max(max, other.max);
}

AggregateResult VectorAggState::Finish() const {
  AggregateResult out;
  out.count = count;
  out.sum = sum;
  if (count == 0) {
    // Match ToAggregateResult over an empty RunningStats bit for bit.
    out.min = std::numeric_limits<double>::infinity();
    out.max = -std::numeric_limits<double>::infinity();
    return out;
  }
  const double n = static_cast<double>(count);
  out.avg = sum / n;
  // int64 -> double rounding is monotonic, so taking extrema in the
  // integer domain first yields exactly the scalar path's double extrema.
  out.min = static_cast<double>(min);
  out.max = static_cast<double>(max);
  if (count >= 2) {
    const double var = sum_sq / n - out.avg * out.avg;
    out.variance = var > 0.0 ? var : 0.0;
  }
  return out;
}

void AccumulateSelected(const Value* data, const SelectionVector& sel,
                        VectorAggState* agg) {
  const uint64_t* words = sel.words();
  const uint64_t word_count = sel.word_count();
  for (uint64_t w = 0; w < word_count; ++w) {
    const uint64_t word = words[w];
    if (word == 0) continue;
    const Value* lanes = data + w * kLanesPerWord;
    if (word == kAllOnes) {
      AccumulateDense64(lanes, agg);
    } else {
      AccumulateSparse(lanes, word, agg);
    }
  }
}

void EmitSelected(const Value* data, const SelectionVector& sel, RowId first,
                  ResultSet* out) {
  const uint64_t* words = sel.words();
  const uint64_t word_count = sel.word_count();
  for (uint64_t w = 0; w < word_count; ++w) {
    uint64_t word = words[w];
    const uint64_t lane_base = w * kLanesPerWord;
    while (word != 0) {
      const uint64_t lane =
          lane_base + static_cast<uint64_t>(__builtin_ctzll(word));
      out->rows.push_back(first + lane);
      out->values.push_back(data[lane]);
      word &= word - 1;
    }
  }
}

VectorAggState AggregateValues(const std::vector<Value>& values) {
  VectorAggState agg;
  const uint64_t n = values.size();
  const Value* data = values.data();
  const uint64_t full = n / kLanesPerWord;
  for (uint64_t w = 0; w < full; ++w) {
    AccumulateDense64(data + w * kLanesPerWord, &agg);
  }
  for (uint64_t i = full * kLanesPerWord; i < n; ++i) {
    const Value v = data[i];
    const double dv = static_cast<double>(v);
    agg.sum += dv;
    agg.sum_sq += dv * dv;
    agg.min = std::min(agg.min, v);
    agg.max = std::max(agg.max, v);
    ++agg.count;
  }
  return agg;
}

bool SelectMorsel(const Table& table, const RangePredicate& pred,
                  Visibility visibility, Morsel morsel,
                  VectorScanContext* ctx) {
  // Skip check before any kernel: a fully-forgotten morsel contributes
  // nothing under kActiveOnly, a fully-live one nothing under
  // kForgottenOnly.
  if (visibility != Visibility::kAll) {
    const uint64_t live = MorselLiveCount(table, morsel);
    if (visibility == Visibility::kActiveOnly && live == 0) {
      ctx->sel.Reset(0);
      NoteMorselSkipped();
      return false;
    }
    if (visibility == Visibility::kForgottenOnly && live == morsel.size()) {
      ctx->sel.Reset(0);
      NoteMorselSkipped();
      return false;
    }
  }
  NoteMorselScanned(morsel.size());
  const ValueSpan slice =
      table.column(pred.col).span(morsel.begin, morsel.end);
  SelectRange(slice.data, slice.size, pred.lo, pred.hi, &ctx->sel);
  ApplyVisibility(table.active_bitmap(), morsel.begin, visibility, &ctx->sel,
                  &ctx->visibility_words);
  return true;
}

uint64_t CountMorselVectorized(const Table& table, const RangePredicate& pred,
                               Visibility visibility, Morsel morsel,
                               VectorScanContext* ctx) {
  if (pred.Empty() || morsel.size() == 0) return 0;
  // Same wholesale-skip check as SelectMorsel.
  const uint64_t* vis = nullptr;
  bool invert = false;
  if (visibility != Visibility::kAll) {
    const uint64_t live = MorselLiveCount(table, morsel);
    if (visibility == Visibility::kActiveOnly && live == 0) {
      NoteMorselSkipped();
      return 0;
    }
    if (visibility == Visibility::kForgottenOnly && live == morsel.size()) {
      NoteMorselSkipped();
      return 0;
    }
    ctx->visibility_words.resize(SelectionWordCount(morsel.size()));
    table.active_bitmap().ExtractWords(morsel.begin, morsel.end,
                                       ctx->visibility_words.data());
    vis = ctx->visibility_words.data();
    invert = visibility == Visibility::kForgottenOnly;
  }
  NoteMorselScanned(morsel.size());
  const ValueSpan slice = table.column(pred.col).span(morsel.begin, morsel.end);
  return FusedCountRange(slice.data, slice.size,
                         static_cast<uint64_t>(pred.lo), pred.UnsignedSpan(),
                         vis, invert);
}

void ScanMorselVectorized(const Table& table, const RangePredicate& pred,
                          Visibility visibility, Morsel morsel,
                          VectorScanContext* ctx, ResultSet* out) {
  if (!SelectMorsel(table, pred, visibility, morsel, ctx)) return;
  EmitSelected(table.column(pred.col).span(morsel.begin, morsel.end).data,
               ctx->sel, morsel.begin, out);
}

VectorAggState AggregateMorselVectorized(const Table& table,
                                         const RangePredicate& pred,
                                         Visibility visibility, Morsel morsel,
                                         VectorScanContext* ctx) {
  VectorAggState agg;
  if (pred.Empty() || morsel.size() == 0) return agg;
  // Same wholesale-skip check as SelectMorsel.
  const uint64_t* vis = nullptr;
  bool invert = false;
  if (visibility != Visibility::kAll) {
    const uint64_t live = MorselLiveCount(table, morsel);
    if (visibility == Visibility::kActiveOnly && live == 0) {
      NoteMorselSkipped();
      return agg;
    }
    if (visibility == Visibility::kForgottenOnly && live == morsel.size()) {
      NoteMorselSkipped();
      return agg;
    }
    ctx->visibility_words.resize(SelectionWordCount(morsel.size()));
    table.active_bitmap().ExtractWords(morsel.begin, morsel.end,
                                       ctx->visibility_words.data());
    vis = ctx->visibility_words.data();
    invert = visibility == Visibility::kForgottenOnly;
  }
  NoteMorselScanned(morsel.size());
  const ValueSpan slice = table.column(pred.col).span(morsel.begin, morsel.end);
  FusedAggregateRange(slice.data, slice.size, static_cast<uint64_t>(pred.lo),
                      pred.UnsignedSpan(), vis, invert, &agg);
  return agg;
}

VectorScanContext& ThreadLocalScanContext() {
  thread_local VectorScanContext ctx;
  return ctx;
}

Status ConjunctionPlan::Validate(const Table& table) const {
  for (const RangePredicate& p : preds) {
    if (p.col >= table.num_columns()) {
      return Status::InvalidArgument("conjunction column out of range");
    }
  }
  return Status::OK();
}

bool SelectConjunctionMorsel(const Table& table, const ConjunctionPlan& plan,
                             Visibility visibility, Morsel morsel,
                             VectorScanContext* ctx) {
  if (plan.preds.empty()) {
    // Vacuous conjunction: every row matches; only visibility filters.
    ctx->sel.Reset(morsel.size());
    uint64_t* words = ctx->sel.words();
    for (uint64_t w = 0; w < ctx->sel.word_count(); ++w) words[w] = kAllOnes;
    const uint64_t rem = morsel.size() & 63;
    if (rem != 0) {
      words[ctx->sel.word_count() - 1] = (uint64_t{1} << rem) - 1;
    }
    ApplyVisibility(table.active_bitmap(), morsel.begin, visibility,
                    &ctx->sel, &ctx->visibility_words);
    NoteMorselScanned(morsel.size());
    return true;
  }
  if (!SelectMorsel(table, plan.preds[0], visibility, morsel, ctx)) {
    return false;
  }
  for (size_t p = 1; p < plan.preds.size(); ++p) {
    // Early exit: once the selection drains, further predicates (and the
    // accumulation) cannot add anything back.
    if (ctx->sel.CountSet() == 0) return false;
    const RangePredicate& pred = plan.preds[p];
    const ValueSpan slice =
        table.column(pred.col).span(morsel.begin, morsel.end);
    AndSelectRange(slice.data, slice.size, pred.lo, pred.hi,
                   ctx->sel.words());
  }
  return true;
}

namespace {

// Column whose values a conjunction scan/aggregate materializes.
size_t ConjunctionValueCol(const ConjunctionPlan& plan) {
  return plan.preds.empty() ? 0 : plan.preds[0].col;
}

inline bool VisibleRow(const Table& table, RowId row, Visibility visibility) {
  switch (visibility) {
    case Visibility::kActiveOnly:
      return table.IsActive(row);
    case Visibility::kAll:
      return true;
    case Visibility::kForgottenOnly:
      return !table.IsActive(row);
  }
  return false;
}

// Operator-level engine counter, mirroring NoteOp in query/scan.cc for the
// conjunction entry points. The scalar branch additionally notes its rows
// here (it is a single whole-table pass, not a morsel kernel).
inline void NoteConjunctionOp(Engine engine) {
#if !defined(AMNESIA_NO_METRICS)
  obs::EngineMetrics& m = obs::EngineMetrics::Get();
  (engine == Engine::kVectorized ? m.scan_ops_vectorized : m.scan_ops_scalar)
      ->Inc();
#else
  (void)engine;
#endif
}

}  // namespace

StatusOr<ResultSet> ScanConjunction(const Table& table,
                                    const ConjunctionPlan& plan,
                                    Visibility visibility, Engine engine) {
  AMNESIA_RETURN_NOT_OK(plan.Validate(table));
  NoteConjunctionOp(engine);
  const size_t value_col = ConjunctionValueCol(plan);
  ResultSet out;
  if (engine == Engine::kScalar) {
    NoteMorselScanned(table.num_rows());
    for (RowId r = 0; r < table.num_rows(); ++r) {
      if (!plan.Matches(table, r)) continue;
      if (!VisibleRow(table, r, visibility)) continue;
      out.rows.push_back(r);
      out.values.push_back(table.value(value_col, r));
    }
    return out;
  }
  VectorScanContext& ctx = ThreadLocalScanContext();
  for (Morsel m : table.Morsels()) {
    if (!SelectConjunctionMorsel(table, plan, visibility, m, &ctx)) continue;
    EmitSelected(table.column(value_col).span(m.begin, m.end).data, ctx.sel,
                 m.begin, &out);
  }
  return out;
}

StatusOr<uint64_t> CountConjunction(const Table& table,
                                    const ConjunctionPlan& plan,
                                    Visibility visibility, Engine engine) {
  AMNESIA_RETURN_NOT_OK(plan.Validate(table));
  NoteConjunctionOp(engine);
  if (engine == Engine::kScalar) {
    NoteMorselScanned(table.num_rows());
    uint64_t count = 0;
    for (RowId r = 0; r < table.num_rows(); ++r) {
      if (plan.Matches(table, r) && VisibleRow(table, r, visibility)) ++count;
    }
    return count;
  }
  VectorScanContext& ctx = ThreadLocalScanContext();
  uint64_t count = 0;
  for (Morsel m : table.Morsels()) {
    if (!SelectConjunctionMorsel(table, plan, visibility, m, &ctx)) continue;
    count += ctx.sel.CountSet();
  }
  return count;
}

StatusOr<AggregateResult> AggregateConjunction(const Table& table,
                                               const ConjunctionPlan& plan,
                                               Visibility visibility,
                                               Engine engine) {
  AMNESIA_RETURN_NOT_OK(plan.Validate(table));
  NoteConjunctionOp(engine);
  const size_t value_col = ConjunctionValueCol(plan);
  if (engine == Engine::kScalar) {
    NoteMorselScanned(table.num_rows());
    RunningStats stats;
    for (RowId r = 0; r < table.num_rows(); ++r) {
      if (plan.Matches(table, r) && VisibleRow(table, r, visibility)) {
        stats.Add(static_cast<double>(table.value(value_col, r)));
      }
    }
    return ToAggregateResult(stats);
  }
  VectorScanContext& ctx = ThreadLocalScanContext();
  VectorAggState agg;
  for (Morsel m : table.Morsels()) {
    if (!SelectConjunctionMorsel(table, plan, visibility, m, &ctx)) continue;
    AccumulateSelected(table.column(value_col).span(m.begin, m.end).data,
                       ctx.sel, &agg);
  }
  return agg.Finish();
}

}  // namespace amnesia
