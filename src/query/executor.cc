// Copyright 2026 The AmnesiaDB Authors

#include "query/executor.h"

#include <algorithm>
#include <optional>
#include <thread>

#include "common/stats.h"
#include "obs/engine_metrics.h"
#include "obs/trace.h"
#include "query/profile.h"
#include "query/vector_kernels.h"

namespace amnesia {

namespace {

// Upper bound on the per-query thread count; a defensive cap, not a tuning
// parameter (scan parallelism saturates memory bandwidth far earlier).
constexpr int kMaxParallelism = 256;

// The plan an aggregate actually runs: the single-pass scan kernel serves
// full scans and the no-index fallback; everything else probes the index.
PlanKind EffectiveAggregatePlan(const ExecOptions& options,
                                const IndexManager* indexes) {
  return (options.plan == PlanKind::kFullScan || indexes == nullptr)
             ? PlanKind::kFullScan
             : options.plan;
}

}  // namespace

ThreadPool* Executor::PoolFor(int parallelism) {
  if (parallelism <= 1) return nullptr;
  // A single-morsel table falls back to the serial kernel anyway; don't
  // spawn (and keep) idle threads for it.
  if (table_->Morsels().count() <= 1) return nullptr;
  // Clamp to hardware concurrency: the pool is grow-only, so an
  // oversubscribed request would otherwise pin useless threads (and their
  // stacks) for the executor's lifetime. Floor of 2 keeps the parallel
  // dispatch path reachable on single-core machines.
  const unsigned hw = std::thread::hardware_concurrency();
  const size_t hw_cap = std::max<size_t>(2, hw);
  size_t want = static_cast<size_t>(
      parallelism > kMaxParallelism ? kMaxParallelism : parallelism);
  if (want > hw_cap) want = hw_cap;
  // Grow-only: one pool at the widest parallelism seen serves every
  // query; narrower requests cap their scan width via ParallelFor's
  // max_workers instead of paying a join+respawn per width change. The
  // query thread drains morsels too, so `want`-way scanning needs only
  // want-1 pool threads.
  if (pool_ == nullptr || pool_->num_threads() < want - 1) {
    pool_ = std::make_unique<ThreadPool>(want - 1);
  }
  return pool_.get();
}

StatusOr<ResultSet> Executor::RunPlan(const RangePredicate& pred,
                                      const ExecOptions& options) {
  if (pred.col >= table_->num_columns()) {
    return Status::InvalidArgument("predicate column out of range");
  }

  PlanKind plan = options.plan;
  if (indexes_ == nullptr && plan != PlanKind::kFullScan) {
    plan = PlanKind::kFullScan;  // graceful degradation, still correct
  }

  switch (plan) {
    case PlanKind::kFullScan: {
      ++stats_.full_scans;
      stats_.rows_examined += table_->num_rows();
      if (ThreadPool* pool = PoolFor(options.parallelism)) {
        return ScanRangeParallel(*table_, pred, options.visibility, *pool,
                                 kDefaultMorselRows,
                                 static_cast<size_t>(options.parallelism),
                                 options.engine);
      }
      return ScanRange(*table_, pred, options.visibility, options.engine);
    }
    case PlanKind::kBrinScan: {
      ++stats_.brin_scans;
      AMNESIA_ASSIGN_OR_RETURN(
          Index * index,
          indexes_->GetOrBuild(*table_, pred.col, IndexKind::kBlockRange));
      AMNESIA_ASSIGN_OR_RETURN(std::vector<RowId> candidates,
                               index->LookupRange(pred.lo, pred.hi));
      stats_.rows_examined += candidates.size();
      ResultSet out;
      for (RowId r : candidates) {
        const Value v = table_->value(pred.col, r);
        if (!pred.Matches(v)) continue;
        // Index plans only ever see active tuples: forgotten rows are
        // skipped even though the candidate block still spans them.
        if (!table_->IsActive(r)) continue;
        out.rows.push_back(r);
        out.values.push_back(v);
      }
      return out;
    }
    case PlanKind::kBTreeProbe: {
      ++stats_.btree_probes;
      AMNESIA_ASSIGN_OR_RETURN(
          Index * index,
          indexes_->GetOrBuild(*table_, pred.col, IndexKind::kBTree));
      AMNESIA_ASSIGN_OR_RETURN(std::vector<RowId> rows,
                               index->LookupRange(pred.lo, pred.hi));
      stats_.rows_examined += rows.size();
      ResultSet out;
      for (RowId r : rows) {
        // The B+-tree is exact and maintained to drop forgotten rows
        // (index-skip); a defensive visibility recheck keeps results
        // correct even when the index was rebuilt from a stale snapshot.
        if (!table_->IsActive(r)) continue;
        out.rows.push_back(r);
        out.values.push_back(table_->value(pred.col, r));
      }
      return out;
    }
  }
  return Status::Internal("unreachable plan kind");
}

StatusOr<ResultSet> Executor::ExecuteRange(const RangePredicate& pred,
                                           const ExecOptions& options) {
  obs::TraceScope trace("executor.scan",
                        obs::EngineMetrics::Get().scan_ns);
  trace.Annotate("plan", static_cast<int64_t>(options.plan));
  trace.Annotate("parallelism", options.parallelism);
  ++stats_.queries;
  std::optional<ProfiledQuery> prof;
  if (options.profile) {
    prof.emplace("scan", options.plan, options.engine, options.visibility,
                 options.parallelism, /*num_shards=*/1);
    prof->Stage("execute");
  }
  AMNESIA_ASSIGN_OR_RETURN(ResultSet result, RunPlan(pred, options));
  stats_.rows_returned += result.size();
  trace.Annotate("rows_returned", static_cast<int64_t>(result.size()));
  if (options.record_access) {
    if (prof) prof->Stage("record_access");
    for (RowId r : result.rows) table_->BumpAccess(r);
  }
  if (prof) prof->Finish(result.size());
  return result;
}

StatusOr<AggregateResult> Executor::ExecuteAggregate(
    const RangePredicate& pred, const ExecOptions& options) {
  obs::TraceScope trace("executor.aggregate",
                        obs::EngineMetrics::Get().scan_ns);
  trace.Annotate("plan", static_cast<int64_t>(options.plan));
  trace.Annotate("parallelism", options.parallelism);
  ++stats_.queries;
  std::optional<ProfiledQuery> prof;
  if (options.profile) {
    prof.emplace("aggregate", EffectiveAggregatePlan(options, indexes_),
                 options.engine, options.visibility, options.parallelism,
                 /*num_shards=*/1);
  }
  // Aggregates reuse the range plan, then fold. For full scans we use the
  // single-pass kernel to avoid materialization.
  if (options.plan == PlanKind::kFullScan || indexes_ == nullptr) {
    ++stats_.full_scans;
    stats_.rows_examined += table_->num_rows();
    if (prof) prof->Stage("execute");
    StatusOr<AggregateResult> result = [&]() -> StatusOr<AggregateResult> {
      if (ThreadPool* pool = PoolFor(options.parallelism)) {
        return AggregateRangeParallel(
            *table_, pred, options.visibility, *pool, kDefaultMorselRows,
            static_cast<size_t>(options.parallelism), options.engine);
      }
      return AggregateRange(*table_, pred, options.visibility,
                            options.engine);
    }();
    if (prof && result.ok()) prof->Finish(result.value().count);
    return result;
  }
  if (prof) prof->Stage("probe");
  AMNESIA_ASSIGN_OR_RETURN(ResultSet rows, RunPlan(pred, options));
  stats_.rows_returned += rows.size();
  if (options.record_access) {
    for (RowId r : rows.rows) table_->BumpAccess(r);
  }
  if (prof) prof->Stage("fold");
  AggregateResult result;
  if (options.engine == Engine::kVectorized) {
    result = AggregateValues(rows.values).Finish();
  } else {
    RunningStats stats;
    for (Value v : rows.values) stats.Add(static_cast<double>(v));
    result = ToAggregateResult(stats);
  }
  if (prof) prof->Finish(result.count);
  return result;
}

StatusOr<AggregateResult> Executor::ExecuteAggregateWithSummary(
    const RangePredicate& pred, const SummaryStore& summaries,
    const ExecOptions& options) {
  ExecOptions active_only = options;
  active_only.visibility = Visibility::kActiveOnly;
  AMNESIA_ASSIGN_OR_RETURN(AggregateResult active,
                           ExecuteAggregate(pred, active_only));
  const Summary forgotten =
      summaries.EstimateRange(pred.col, pred.lo, pred.hi);
  return BlendAggregates(active, forgotten);
}

AggregateResult BlendAggregates(const AggregateResult& active,
                                const Summary& forgotten) {
  if (forgotten.count == 0) return active;
  AggregateResult out = active;
  out.count = active.count + forgotten.count;
  out.sum = active.sum + forgotten.sum;
  out.avg = out.count == 0 ? 0.0 : out.sum / static_cast<double>(out.count);
  if (active.count == 0) {
    out.min = static_cast<double>(forgotten.min);
    out.max = static_cast<double>(forgotten.max);
  } else {
    out.min = std::min(active.min, static_cast<double>(forgotten.min));
    out.max = std::max(active.max, static_cast<double>(forgotten.max));
  }
  // Variance over the blend is not recoverable from (count, sum, min, max);
  // keep the active-only variance as the best available estimate.
  return out;
}

}  // namespace amnesia
