// Copyright 2026 The AmnesiaDB Authors

#include "query/scan.h"

#include <algorithm>

#include "common/stats.h"

namespace amnesia {

namespace {

inline bool Visible(const Table& table, RowId row, Visibility visibility) {
  switch (visibility) {
    case Visibility::kActiveOnly:
      return table.IsActive(row);
    case Visibility::kAll:
      return true;
    case Visibility::kForgottenOnly:
      return !table.IsActive(row);
  }
  return false;
}

Status ValidatePred(const Table& table, const RangePredicate& pred) {
  if (pred.col >= table.num_columns()) {
    return Status::InvalidArgument("predicate column out of range");
  }
  return Status::OK();
}

}  // namespace

StatusOr<ResultSet> ScanRange(const Table& table, const RangePredicate& pred,
                              Visibility visibility) {
  AMNESIA_RETURN_NOT_OK(ValidatePred(table, pred));
  ResultSet out;
  const auto& data = table.column(pred.col).data();
  const uint64_t n = table.num_rows();
  for (RowId r = 0; r < n; ++r) {
    const Value v = data[r];
    if (!pred.Matches(v)) continue;
    if (!Visible(table, r, visibility)) continue;
    out.rows.push_back(r);
    out.values.push_back(v);
  }
  return out;
}

StatusOr<uint64_t> CountRange(const Table& table, const RangePredicate& pred,
                              Visibility visibility) {
  AMNESIA_RETURN_NOT_OK(ValidatePred(table, pred));
  uint64_t count = 0;
  const auto& data = table.column(pred.col).data();
  const uint64_t n = table.num_rows();
  for (RowId r = 0; r < n; ++r) {
    if (pred.Matches(data[r]) && Visible(table, r, visibility)) ++count;
  }
  return count;
}

StatusOr<AggregateResult> AggregateRange(const Table& table,
                                         const RangePredicate& pred,
                                         Visibility visibility) {
  AMNESIA_RETURN_NOT_OK(ValidatePred(table, pred));
  RunningStats stats;
  const auto& data = table.column(pred.col).data();
  const uint64_t n = table.num_rows();
  for (RowId r = 0; r < n; ++r) {
    const Value v = data[r];
    if (pred.Matches(v) && Visible(table, r, visibility)) {
      stats.Add(static_cast<double>(v));
    }
  }
  AggregateResult out;
  out.count = stats.count();
  out.sum = stats.sum();
  out.avg = stats.mean();
  out.min = stats.min();
  out.max = stats.max();
  out.variance = stats.variance();
  return out;
}

}  // namespace amnesia
