// Copyright 2026 The AmnesiaDB Authors

#include "query/scan.h"

#include <algorithm>

#include "common/stats.h"
#include "obs/engine_metrics.h"
#include "query/profile.h"
#include "query/vector_kernels.h"

namespace amnesia {

namespace {

// One operator-level increment per public Scan/Count/AggregateRange call,
// keyed by the engine that actually ran. Parallel operators note only when
// they take the parallel path — their serial fallback delegates to the
// serial operator, which notes the call itself.
inline void NoteOp(Engine engine) {
#if !defined(AMNESIA_NO_METRICS)
  obs::EngineMetrics& m = obs::EngineMetrics::Get();
  (engine == Engine::kVectorized ? m.scan_ops_vectorized : m.scan_ops_scalar)
      ->Inc();
#else
  (void)engine;
#endif
}

// Scalar kernels never skip a morsel: every row in the morsel is touched.
inline void NoteScalarMorsel(uint64_t rows) {
#if !defined(AMNESIA_NO_METRICS)
  obs::EngineMetrics& m = obs::EngineMetrics::Get();
  m.scan_morsels_scanned->Inc();
  m.scan_rows_scanned->Inc(rows);
#else
  (void)rows;
#endif
}

inline bool Visible(const Table& table, RowId row, Visibility visibility) {
  switch (visibility) {
    case Visibility::kActiveOnly:
      return table.IsActive(row);
    case Visibility::kAll:
      return true;
    case Visibility::kForgottenOnly:
      return !table.IsActive(row);
  }
  return false;
}

Status ValidatePred(const Table& table, const RangePredicate& pred) {
  if (pred.col >= table.num_columns()) {
    return Status::InvalidArgument("predicate column out of range");
  }
  return Status::OK();
}

// Scalar per-morsel kernels: the serial operators run them over one
// whole-table morsel; the parallel operators run them per morsel and merge
// in morsel order. Keeping exactly one copy of each match+visibility loop
// is what upholds the parallel/serial equivalence contract. The vectorized
// counterparts live in query/vector_kernels.{h,cc} and uphold the same
// contract against these loops.

ResultSet ScanMorsel(const Table& table, const RangePredicate& pred,
                     Visibility visibility, Morsel morsel) {
  NoteScalarMorsel(morsel.size());
  ResultSet out;
  // ForEachSpan walks the morsel's maximal contiguous runs: one run for a
  // vector-mode column, one per sealed partition file (plus the tail) for
  // a mapped column — the scalar loops read the mapped words in place.
  table.column(pred.col).ForEachSpan(
      morsel.begin, morsel.end, [&](RowId base, ValueSpan vals) {
        for (uint64_t i = 0; i < vals.size; ++i) {
          const Value v = vals[i];
          if (!pred.Matches(v)) continue;
          const RowId r = base + i;
          if (!Visible(table, r, visibility)) continue;
          out.rows.push_back(r);
          out.values.push_back(v);
        }
      });
  return out;
}

uint64_t CountMorsel(const Table& table, const RangePredicate& pred,
                     Visibility visibility, Morsel morsel) {
  NoteScalarMorsel(morsel.size());
  uint64_t count = 0;
  table.column(pred.col).ForEachSpan(
      morsel.begin, morsel.end, [&](RowId base, ValueSpan vals) {
        for (uint64_t i = 0; i < vals.size; ++i) {
          if (pred.Matches(vals[i]) && Visible(table, base + i, visibility)) {
            ++count;
          }
        }
      });
  return count;
}

RunningStats AggregateMorsel(const Table& table, const RangePredicate& pred,
                             Visibility visibility, Morsel morsel) {
  NoteScalarMorsel(morsel.size());
  RunningStats stats;
  table.column(pred.col).ForEachSpan(
      morsel.begin, morsel.end, [&](RowId base, ValueSpan vals) {
        for (uint64_t i = 0; i < vals.size; ++i) {
          const Value v = vals[i];
          if (pred.Matches(v) && Visible(table, base + i, visibility)) {
            stats.Add(static_cast<double>(v));
          }
        }
      });
  return stats;
}

Morsel WholeTable(const Table& table) { return Morsel{0, table.num_rows()}; }

Status ValidatePred(const ShardedTable& table, const RangePredicate& pred) {
  if (pred.col >= table.num_columns()) {
    return Status::InvalidArgument("predicate column out of range");
  }
  return Status::OK();
}

// Runs the unsharded scan kernel on one shard-local morsel and rewrites
// the result's row ids into the global encoding, so shard-major merges
// produce globally addressed results with the same per-shard row order as
// the unsharded kernel.
ResultSet ScanShardMorsel(const ShardedTable& table, const RangePredicate& pred,
                          Visibility visibility, ShardMorsel sm,
                          Engine engine) {
  const Shard& shard = table.shard(sm.shard);
  ResultSet out;
  {
    ProfiledMorselScope prof(shard.table(), visibility, engine, sm.morsel,
                             sm.shard);
    if (engine == Engine::kVectorized) {
      VectorScanContext& ctx = ThreadLocalScanContext();
      ScanMorselVectorized(shard.table(), pred, visibility, sm.morsel, &ctx,
                           &out);
    } else {
      out = ScanMorsel(shard.table(), pred, visibility, sm.morsel);
    }
  }
  for (RowId& r : out.rows) r = shard.ToGlobal(r);
  return out;
}

// Shared dispatch skeleton of the parallel operators: runs `kernel` over
// every morsel on the pool and returns the per-morsel partials in morsel
// order. Each operator supplies only its kernel and its merge step.
template <typename Partial, typename Kernel>
std::vector<Partial> RunMorsels(const MorselRange& morsels, ThreadPool& pool,
                                size_t max_workers, const Kernel& kernel) {
  std::vector<Partial> partials(morsels.count());
  pool.ParallelFor(0, morsels.count(), 1, max_workers,
                   [&](uint64_t lo, uint64_t hi) {
                     for (uint64_t i = lo; i < hi; ++i) {
                       partials[i] = kernel(morsels.at(i));
                     }
                   });
  return partials;
}

// Serial batch-at-a-time drivers: one morsel's column slice at a time
// through the vectorized kernels, reusing this thread's scratch buffers.
// `shard` only labels the morsels for an active query profile (the
// sharded serial operators run these drivers per shard).

ResultSet ScanVectorized(const Table& table, const RangePredicate& pred,
                         Visibility visibility, uint32_t shard = 0) {
  VectorScanContext& ctx = ThreadLocalScanContext();
  ResultSet out;
  for (Morsel m : table.Morsels()) {
    ProfiledMorselScope prof(table, visibility, Engine::kVectorized, m, shard);
    ScanMorselVectorized(table, pred, visibility, m, &ctx, &out);
  }
  return out;
}

uint64_t CountVectorized(const Table& table, const RangePredicate& pred,
                         Visibility visibility, uint32_t shard = 0) {
  VectorScanContext& ctx = ThreadLocalScanContext();
  uint64_t count = 0;
  for (Morsel m : table.Morsels()) {
    ProfiledMorselScope prof(table, visibility, Engine::kVectorized, m, shard);
    count += CountMorselVectorized(table, pred, visibility, m, &ctx);
  }
  return count;
}

VectorAggState AggregateVectorized(const Table& table,
                                   const RangePredicate& pred,
                                   Visibility visibility, uint32_t shard = 0) {
  VectorScanContext& ctx = ThreadLocalScanContext();
  VectorAggState agg;
  for (Morsel m : table.Morsels()) {
    ProfiledMorselScope prof(table, visibility, Engine::kVectorized, m, shard);
    agg.Merge(AggregateMorselVectorized(table, pred, visibility, m, &ctx));
  }
  return agg;
}

}  // namespace

AggregateResult ToAggregateResult(const RunningStats& stats) {
  AggregateResult out;
  out.count = stats.count();
  out.sum = stats.sum();
  out.avg = stats.mean();
  out.min = stats.min();
  out.max = stats.max();
  out.variance = stats.variance();
  return out;
}

StatusOr<ResultSet> ScanRange(const Table& table, const RangePredicate& pred,
                              Visibility visibility, Engine engine) {
  AMNESIA_RETURN_NOT_OK(ValidatePred(table, pred));
  NoteOp(engine);
  if (engine == Engine::kVectorized) {
    return ScanVectorized(table, pred, visibility);
  }
  const Morsel whole = WholeTable(table);
  ProfiledMorselScope prof(table, visibility, Engine::kScalar, whole, 0);
  return ScanMorsel(table, pred, visibility, whole);
}

StatusOr<uint64_t> CountRange(const Table& table, const RangePredicate& pred,
                              Visibility visibility, Engine engine) {
  AMNESIA_RETURN_NOT_OK(ValidatePred(table, pred));
  NoteOp(engine);
  if (engine == Engine::kVectorized) {
    return CountVectorized(table, pred, visibility);
  }
  const Morsel whole = WholeTable(table);
  ProfiledMorselScope prof(table, visibility, Engine::kScalar, whole, 0);
  return CountMorsel(table, pred, visibility, whole);
}

StatusOr<AggregateResult> AggregateRange(const Table& table,
                                         const RangePredicate& pred,
                                         Visibility visibility,
                                         Engine engine) {
  AMNESIA_RETURN_NOT_OK(ValidatePred(table, pred));
  NoteOp(engine);
  if (engine == Engine::kVectorized) {
    return AggregateVectorized(table, pred, visibility).Finish();
  }
  const Morsel whole = WholeTable(table);
  ProfiledMorselScope prof(table, visibility, Engine::kScalar, whole, 0);
  return ToAggregateResult(AggregateMorsel(table, pred, visibility, whole));
}

StatusOr<ResultSet> ScanRangeParallel(const Table& table,
                                      const RangePredicate& pred,
                                      Visibility visibility, ThreadPool& pool,
                                      uint64_t morsel_rows, size_t max_workers,
                                      Engine engine) {
  AMNESIA_RETURN_NOT_OK(ValidatePred(table, pred));
  const MorselRange morsels = table.Morsels(morsel_rows);
  if (pool.EffectiveWidth(max_workers) <= 1 || morsels.count() <= 1) {
    return ScanRange(table, pred, visibility, engine);
  }
  NoteOp(engine);

  // Merging in morsel order restores ascending RowId order.
  const std::vector<ResultSet> partials = RunMorsels<ResultSet>(
      morsels, pool, max_workers, [&](Morsel m) {
        ProfiledMorselScope prof(table, visibility, engine, m, 0);
        if (engine == Engine::kVectorized) {
          ResultSet part;
          ScanMorselVectorized(table, pred, visibility, m,
                               &ThreadLocalScanContext(), &part);
          return part;
        }
        return ScanMorsel(table, pred, visibility, m);
      });

  size_t total = 0;
  for (const ResultSet& p : partials) total += p.rows.size();
  ResultSet out;
  out.rows.reserve(total);
  out.values.reserve(total);
  for (const ResultSet& p : partials) {
    out.rows.insert(out.rows.end(), p.rows.begin(), p.rows.end());
    out.values.insert(out.values.end(), p.values.begin(), p.values.end());
  }
  return out;
}

StatusOr<uint64_t> CountRangeParallel(const Table& table,
                                      const RangePredicate& pred,
                                      Visibility visibility, ThreadPool& pool,
                                      uint64_t morsel_rows, size_t max_workers,
                                      Engine engine) {
  AMNESIA_RETURN_NOT_OK(ValidatePred(table, pred));
  const MorselRange morsels = table.Morsels(morsel_rows);
  if (pool.EffectiveWidth(max_workers) <= 1 || morsels.count() <= 1) {
    return CountRange(table, pred, visibility, engine);
  }
  NoteOp(engine);

  const std::vector<uint64_t> partials = RunMorsels<uint64_t>(
      morsels, pool, max_workers, [&](Morsel m) {
        ProfiledMorselScope prof(table, visibility, engine, m, 0);
        if (engine == Engine::kVectorized) {
          return CountMorselVectorized(table, pred, visibility, m,
                                       &ThreadLocalScanContext());
        }
        return CountMorsel(table, pred, visibility, m);
      });

  uint64_t count = 0;
  for (uint64_t p : partials) count += p;
  return count;
}

StatusOr<AggregateResult> AggregateRangeParallel(const Table& table,
                                                 const RangePredicate& pred,
                                                 Visibility visibility,
                                                 ThreadPool& pool,
                                                 uint64_t morsel_rows,
                                                 size_t max_workers,
                                                 Engine engine) {
  AMNESIA_RETURN_NOT_OK(ValidatePred(table, pred));
  const MorselRange morsels = table.Morsels(morsel_rows);
  if (pool.EffectiveWidth(max_workers) <= 1 || morsels.count() <= 1) {
    return AggregateRange(table, pred, visibility, engine);
  }
  NoteOp(engine);

  if (engine == Engine::kVectorized) {
    const std::vector<VectorAggState> partials = RunMorsels<VectorAggState>(
        morsels, pool, max_workers, [&](Morsel m) {
          ProfiledMorselScope prof(table, visibility, engine, m, 0);
          return AggregateMorselVectorized(table, pred, visibility, m,
                                           &ThreadLocalScanContext());
        });
    VectorAggState agg;
    for (const VectorAggState& p : partials) agg.Merge(p);
    return agg.Finish();
  }

  const std::vector<RunningStats> partials = RunMorsels<RunningStats>(
      morsels, pool, max_workers, [&](Morsel m) {
        ProfiledMorselScope prof(table, visibility, engine, m, 0);
        return AggregateMorsel(table, pred, visibility, m);
      });

  // Merge in morsel order: deterministic regardless of which worker ran
  // which morsel, and min/max/count are exactly the serial values.
  RunningStats stats;
  for (const RunningStats& p : partials) stats.Merge(p);
  return ToAggregateResult(stats);
}

// --------------------------------------------------- sharded operators

StatusOr<ResultSet> ScanRange(const ShardedTable& table,
                              const RangePredicate& pred,
                              Visibility visibility, Engine engine) {
  AMNESIA_RETURN_NOT_OK(ValidatePred(table, pred));
  NoteOp(engine);
  ResultSet out;
  for (uint32_t s = 0; s < table.num_shards(); ++s) {
    const Shard& shard = table.shard(s);
    ResultSet part;
    if (engine == Engine::kVectorized) {
      part = ScanVectorized(shard.table(), pred, visibility, s);
      for (RowId& r : part.rows) r = shard.ToGlobal(r);
    } else {
      part = ScanShardMorsel(table, pred, visibility,
                             ShardMorsel{s, WholeTable(shard.table())},
                             Engine::kScalar);
    }
    out.rows.insert(out.rows.end(), part.rows.begin(), part.rows.end());
    out.values.insert(out.values.end(), part.values.begin(),
                      part.values.end());
  }
  return out;
}

StatusOr<uint64_t> CountRange(const ShardedTable& table,
                              const RangePredicate& pred,
                              Visibility visibility, Engine engine) {
  AMNESIA_RETURN_NOT_OK(ValidatePred(table, pred));
  NoteOp(engine);
  uint64_t count = 0;
  for (uint32_t s = 0; s < table.num_shards(); ++s) {
    const Table& shard = table.shard(s).table();
    if (engine == Engine::kVectorized) {
      count += CountVectorized(shard, pred, visibility, s);
    } else {
      const Morsel whole = WholeTable(shard);
      ProfiledMorselScope prof(shard, visibility, Engine::kScalar, whole, s);
      count += CountMorsel(shard, pred, visibility, whole);
    }
  }
  return count;
}

StatusOr<AggregateResult> AggregateRange(const ShardedTable& table,
                                         const RangePredicate& pred,
                                         Visibility visibility,
                                         Engine engine) {
  AMNESIA_RETURN_NOT_OK(ValidatePred(table, pred));
  NoteOp(engine);
  if (engine == Engine::kVectorized) {
    // Per-shard partials merge in shard-major order, mirroring the scalar
    // RunningStats merge below.
    VectorAggState agg;
    for (uint32_t s = 0; s < table.num_shards(); ++s) {
      agg.Merge(
          AggregateVectorized(table.shard(s).table(), pred, visibility, s));
    }
    return agg.Finish();
  }
  RunningStats stats;
  for (uint32_t s = 0; s < table.num_shards(); ++s) {
    const Table& shard = table.shard(s).table();
    const Morsel whole = WholeTable(shard);
    ProfiledMorselScope prof(shard, visibility, Engine::kScalar, whole, s);
    stats.Merge(AggregateMorsel(shard, pred, visibility, whole));
  }
  return ToAggregateResult(stats);
}

StatusOr<ResultSet> ScanRangeParallel(const ShardedTable& table,
                                      const RangePredicate& pred,
                                      Visibility visibility, ThreadPool& pool,
                                      uint64_t morsel_rows, size_t max_workers,
                                      Engine engine) {
  AMNESIA_RETURN_NOT_OK(ValidatePred(table, pred));
  const ShardedMorselRange morsels = table.Morsels(morsel_rows);
  if (pool.EffectiveWidth(max_workers) <= 1 || morsels.count() <= 1) {
    return ScanRange(table, pred, visibility, engine);
  }
  NoteOp(engine);

  std::vector<ResultSet> partials(morsels.count());
  pool.ParallelFor(0, morsels.count(), 1, max_workers,
                   [&](uint64_t lo, uint64_t hi) {
                     for (uint64_t i = lo; i < hi; ++i) {
                       partials[i] = ScanShardMorsel(table, pred, visibility,
                                                     morsels.at(i), engine);
                     }
                   });

  size_t total = 0;
  for (const ResultSet& p : partials) total += p.rows.size();
  ResultSet out;
  out.rows.reserve(total);
  out.values.reserve(total);
  for (const ResultSet& p : partials) {
    out.rows.insert(out.rows.end(), p.rows.begin(), p.rows.end());
    out.values.insert(out.values.end(), p.values.begin(), p.values.end());
  }
  return out;
}

StatusOr<uint64_t> CountRangeParallel(const ShardedTable& table,
                                      const RangePredicate& pred,
                                      Visibility visibility, ThreadPool& pool,
                                      uint64_t morsel_rows, size_t max_workers,
                                      Engine engine) {
  AMNESIA_RETURN_NOT_OK(ValidatePred(table, pred));
  const ShardedMorselRange morsels = table.Morsels(morsel_rows);
  if (pool.EffectiveWidth(max_workers) <= 1 || morsels.count() <= 1) {
    return CountRange(table, pred, visibility, engine);
  }
  NoteOp(engine);

  std::vector<uint64_t> partials(morsels.count(), 0);
  pool.ParallelFor(0, morsels.count(), 1, max_workers,
                   [&](uint64_t lo, uint64_t hi) {
                     for (uint64_t i = lo; i < hi; ++i) {
                       const ShardMorsel sm = morsels.at(i);
                       const Table& shard = table.shard(sm.shard).table();
                       ProfiledMorselScope prof(shard, visibility, engine,
                                                sm.morsel, sm.shard);
                       partials[i] =
                           engine == Engine::kVectorized
                               ? CountMorselVectorized(
                                     shard, pred, visibility, sm.morsel,
                                     &ThreadLocalScanContext())
                               : CountMorsel(shard, pred, visibility,
                                             sm.morsel);
                     }
                   });

  uint64_t count = 0;
  for (uint64_t p : partials) count += p;
  return count;
}

StatusOr<AggregateResult> AggregateRangeParallel(const ShardedTable& table,
                                                 const RangePredicate& pred,
                                                 Visibility visibility,
                                                 ThreadPool& pool,
                                                 uint64_t morsel_rows,
                                                 size_t max_workers,
                                                 Engine engine) {
  AMNESIA_RETURN_NOT_OK(ValidatePred(table, pred));
  const ShardedMorselRange morsels = table.Morsels(morsel_rows);
  if (pool.EffectiveWidth(max_workers) <= 1 || morsels.count() <= 1) {
    return AggregateRange(table, pred, visibility, engine);
  }
  NoteOp(engine);

  if (engine == Engine::kVectorized) {
    std::vector<VectorAggState> partials(morsels.count());
    pool.ParallelFor(0, morsels.count(), 1, max_workers,
                     [&](uint64_t lo, uint64_t hi) {
                       for (uint64_t i = lo; i < hi; ++i) {
                         const ShardMorsel sm = morsels.at(i);
                         const Table& shard = table.shard(sm.shard).table();
                         ProfiledMorselScope prof(shard, visibility, engine,
                                                  sm.morsel, sm.shard);
                         partials[i] = AggregateMorselVectorized(
                             shard, pred, visibility, sm.morsel,
                             &ThreadLocalScanContext());
                       }
                     });
    VectorAggState agg;
    for (const VectorAggState& p : partials) agg.Merge(p);
    return agg.Finish();
  }

  std::vector<RunningStats> partials(morsels.count());
  pool.ParallelFor(0, morsels.count(), 1, max_workers,
                   [&](uint64_t lo, uint64_t hi) {
                     for (uint64_t i = lo; i < hi; ++i) {
                       const ShardMorsel sm = morsels.at(i);
                       const Table& shard = table.shard(sm.shard).table();
                       ProfiledMorselScope prof(shard, visibility, engine,
                                                sm.morsel, sm.shard);
                       partials[i] = AggregateMorsel(shard, pred, visibility,
                                                     sm.morsel);
                     }
                   });

  // Shard-major morsel order makes the merge deterministic and keeps
  // COUNT/MIN/MAX exactly the serial sharded values.
  RunningStats stats;
  for (const RunningStats& p : partials) stats.Merge(p);
  return ToAggregateResult(stats);
}

}  // namespace amnesia
