// Copyright 2026 The AmnesiaDB Authors
//
// Ground-truth oracle. The simulator "keeps a record of active and
// forgotten tuples [which] provides a basis for comparing query results
// with and without amnesia" (§2.1). The oracle retains every value ever
// inserted — regardless of forgetting, scrubbing or compaction in the hot
// table — and answers the same range/aggregate queries exactly, so the
// metrics layer can compute RF, MF, PF and E precisely.

#ifndef AMNESIA_QUERY_ORACLE_H_
#define AMNESIA_QUERY_ORACLE_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "query/predicate.h"
#include "query/result.h"
#include "storage/types.h"

namespace amnesia {

class ThreadPool;  // common/thread_pool.h; kept out of this header

/// \brief Immutable-history answer service for one column.
///
/// Appends are buffered; Seal() (called once per update batch) sorts the
/// history and rebuilds prefix sums, after which range counts and range
/// aggregates cost O(log n).
class GroundTruthOracle {
 public:
  /// Records one inserted value.
  void Append(Value v);

  /// Sorts buffered history and rebuilds prefix aggregates. Idempotent.
  void Seal();

  /// Returns the number of values ever inserted.
  uint64_t size() const { return values_.size() + pending_.size(); }

  /// Returns how many inserted values fall in [lo, hi).
  /// Precondition: Seal() since the last Append.
  StatusOr<uint64_t> CountRange(Value lo, Value hi) const;

  /// Morsel-parallel CountRange over the raw (sealed + pending) history
  /// on `pool` — no Seal() precondition, always exact. Use it to probe an
  /// unsealed history mid-batch without paying Seal()'s re-sort; once
  /// sealed, the O(log n) CountRange path is strictly faster.
  uint64_t CountRangeParallel(Value lo, Value hi, ThreadPool& pool,
                              size_t max_workers = 0) const;

  /// Returns the full aggregates over values in [lo, hi).
  /// Precondition: Seal() since the last Append.
  StatusOr<AggregateResult> AggregateRange(Value lo, Value hi) const;

  /// Returns the i-th smallest inserted value. Used by query generators to
  /// draw anchors "over all data being inserted" (§4.2).
  /// Precondition: Seal() since the last Append; i < size().
  StatusOr<Value> ValueAt(uint64_t i) const;

  /// Returns the largest value ever inserted (min int64 when empty).
  Value max_seen() const { return max_seen_; }
  /// Returns the smallest value ever inserted (max int64 when empty).
  Value min_seen() const { return min_seen_; }

 private:
  bool sealed() const { return pending_.empty(); }

  std::vector<Value> values_;   // sorted after Seal()
  std::vector<Value> pending_;  // not yet merged
  std::vector<double> prefix_sum_;
  std::vector<double> prefix_sq_;
  Value max_seen_;
  Value min_seen_;
};

}  // namespace amnesia

#endif  // AMNESIA_QUERY_ORACLE_H_
