// Copyright 2026 The AmnesiaDB Authors

#ifndef AMNESIA_QUERY_RESULT_H_
#define AMNESIA_QUERY_RESULT_H_

#include <cstdint>
#include <vector>

#include "storage/types.h"

namespace amnesia {

/// \brief Materialized result of a range scan: matching rows and their
/// values, in ascending RowId order.
struct ResultSet {
  std::vector<RowId> rows;
  std::vector<Value> values;

  /// Returns the number of result tuples — the paper's RF(Q).
  uint64_t size() const { return rows.size(); }
  /// Returns true when no tuple matched.
  bool empty() const { return rows.empty(); }
};

/// \brief Supported aggregate functions (§2.2: "simple aggregations over
/// sub-ranges, e.g., the average").
enum class AggregateKind : int {
  kCount = 0,
  kSum = 1,
  kAvg = 2,
  kMin = 3,
  kMax = 4,
  kVariance = 5,
};

/// \brief Result of an aggregate query over a (possibly restricted) column.
struct AggregateResult {
  uint64_t count = 0;
  double sum = 0.0;
  double avg = 0.0;
  double min = 0.0;       ///< Meaningless when count == 0.
  double max = 0.0;       ///< Meaningless when count == 0.
  double variance = 0.0;  ///< Population variance.

  /// Returns the value of the requested aggregate.
  double Get(AggregateKind kind) const {
    switch (kind) {
      case AggregateKind::kCount:
        return static_cast<double>(count);
      case AggregateKind::kSum:
        return sum;
      case AggregateKind::kAvg:
        return avg;
      case AggregateKind::kMin:
        return min;
      case AggregateKind::kMax:
        return max;
      case AggregateKind::kVariance:
        return variance;
    }
    return 0.0;
  }
};

}  // namespace amnesia

#endif  // AMNESIA_QUERY_RESULT_H_
