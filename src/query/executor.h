// Copyright 2026 The AmnesiaDB Authors
//
// Query executor: picks a plan (full scan, BRIN-pruned scan, B+-tree
// probe), applies visibility, optionally records per-tuple access (the
// feedback signal the rot policy learns from), and can blend the summary
// tier into aggregates so that "the DBMS will only be able to answer
// specific aggregation queries" over forgotten data, exactly as §1 of the
// paper sketches.

#ifndef AMNESIA_QUERY_EXECUTOR_H_
#define AMNESIA_QUERY_EXECUTOR_H_

#include <cstdint>
#include <memory>

#include "common/status.h"
#include "common/thread_pool.h"
#include "index/index_manager.h"
#include "query/predicate.h"
#include "query/result.h"
#include "query/scan.h"
#include "storage/summary_store.h"
#include "storage/table.h"

namespace amnesia {

/// \brief Plan shapes the executor can choose.
enum class PlanKind : int {
  kFullScan = 0,
  kBrinScan = 1,
  kBTreeProbe = 2,
};

/// \brief Per-query execution options.
struct ExecOptions {
  /// Plan preference. kBrinScan / kBTreeProbe force that access path (the
  /// index is built on demand); kFullScan bypasses indexes entirely.
  PlanKind plan = PlanKind::kFullScan;
  /// Tuples the query may observe. Index probes always behave as
  /// kActiveOnly for rows erased from the index (index-skip amnesia);
  /// kAll is only honored by full scans.
  Visibility visibility = Visibility::kActiveOnly;
  /// When true, every tuple in the result gets its access count bumped —
  /// the learning signal for query-based (rot) amnesia.
  bool record_access = true;
  /// Number of concurrent scan workers (the query thread plus
  /// parallelism-1 pool helpers, clamped to hardware concurrency) for
  /// full-scan plans. 1 (the default) runs
  /// the exact serial code path, including `record_access` ordering; >1
  /// scans disjoint RowId morsels on a pool and merges per-morsel results
  /// in morsel order, so results and access bumps are identical to serial
  /// (aggregates up to FP reassociation). Index plans ignore this knob.
  int parallelism = 1;
  /// Execution engine for full-scan plans and the aggregate fold.
  /// kVectorized routes scans through the batch-at-a-time selection-bitmap
  /// kernels (same rows/COUNT/MIN/MAX as kScalar, SUM/AVG/variance up to
  /// FP reassociation) and folds index-plan aggregates with the dense lane
  /// kernel instead of Welford. Index lookups themselves are unaffected.
  Engine engine = Engine::kScalar;
  /// When true, the query records an EXPLAIN-ANALYZE-style QueryProfile
  /// (per-stage wall times, per-shard morsel/row counts, engine used)
  /// into ProfileLog::Global() — the /profilez data (query/profile.h).
  /// Profiling only observes the execution path, so results are
  /// bit-identical to the unprofiled run; the hooks cost one atomic load
  /// per morsel when off. No-op under AMNESIA_NO_METRICS.
  bool profile = false;
};

/// \brief Execution telemetry.
struct ExecutorStats {
  uint64_t queries = 0;
  uint64_t full_scans = 0;
  uint64_t brin_scans = 0;
  uint64_t btree_probes = 0;
  uint64_t rows_examined = 0;  ///< Tuples touched before predicate recheck.
  uint64_t rows_returned = 0;
};

/// \brief Single-table query executor with index selection.
class Executor {
 public:
  /// The table and index manager must outlive the executor. `indexes` may
  /// be null, in which case every query falls back to a full scan.
  Executor(Table* table, IndexManager* indexes)
      : table_(table), indexes_(indexes) {}

  /// Runs a range query and materializes matching tuples.
  StatusOr<ResultSet> ExecuteRange(const RangePredicate& pred,
                                   const ExecOptions& options);

  /// Runs `SELECT agg(col) WHERE lo <= col < hi` over the chosen
  /// visibility. All aggregates are computed in one pass.
  StatusOr<AggregateResult> ExecuteAggregate(const RangePredicate& pred,
                                             const ExecOptions& options);

  /// Like ExecuteAggregate with Visibility::kActiveOnly, then folds in the
  /// summary tier's estimate for forgotten tuples in the range: the
  /// summary-backend answer. COUNT/SUM/AVG/MIN/MAX are blended; variance
  /// is the active-only variance (summaries do not retain second moments).
  StatusOr<AggregateResult> ExecuteAggregateWithSummary(
      const RangePredicate& pred, const SummaryStore& summaries,
      const ExecOptions& options);

  /// Returns execution telemetry.
  const ExecutorStats& stats() const { return stats_; }

 private:
  StatusOr<ResultSet> RunPlan(const RangePredicate& pred,
                              const ExecOptions& options);

  /// Returns the cached pool, grown to at least `parallelism` workers, or
  /// nullptr when the request is serial. Narrower queries reuse the wide
  /// pool and cap their scan width per call.
  ThreadPool* PoolFor(int parallelism);

  Table* table_;
  IndexManager* indexes_;
  ExecutorStats stats_;
  std::unique_ptr<ThreadPool> pool_;
};

/// \brief Blends an active-only aggregate with a forgotten-mass summary
/// estimate. Exposed for tests and the summary-backend bench.
AggregateResult BlendAggregates(const AggregateResult& active,
                                const Summary& forgotten);

}  // namespace amnesia

#endif  // AMNESIA_QUERY_EXECUTOR_H_
