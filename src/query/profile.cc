// Copyright 2026 The AmnesiaDB Authors

#include "query/profile.h"

#include <cstdarg>
#include <cstdio>
#include <utility>

#include "query/vector_kernels.h"

namespace amnesia {

namespace {

void AppendFmt(std::string* out, const char* fmt, ...)
    __attribute__((format(printf, 2, 3)));

void AppendFmt(std::string* out, const char* fmt, ...) {
  char buf[256];
  va_list args;
  va_start(args, fmt);
  std::vsnprintf(buf, sizeof(buf), fmt, args);
  va_end(args);
  out->append(buf);
}

double Ms(uint64_t ns) { return static_cast<double>(ns) / 1e6; }

}  // namespace

const char* PlanKindName(PlanKind plan) {
  switch (plan) {
    case PlanKind::kFullScan:
      return "full_scan";
    case PlanKind::kBrinScan:
      return "brin_scan";
    case PlanKind::kBTreeProbe:
      return "btree_probe";
  }
  return "unknown";
}

const char* EngineName(Engine engine) {
  switch (engine) {
    case Engine::kScalar:
      return "scalar";
    case Engine::kVectorized:
      return "vectorized";
  }
  return "unknown";
}

const char* VisibilityName(Visibility visibility) {
  switch (visibility) {
    case Visibility::kActiveOnly:
      return "active_only";
    case Visibility::kAll:
      return "all";
    case Visibility::kForgottenOnly:
      return "forgotten_only";
  }
  return "unknown";
}

QueryProfile::ShardStats QueryProfile::Totals() const {
  ShardStats total;
  for (const ShardStats& s : shards) {
    total.morsels_scanned += s.morsels_scanned;
    total.morsels_skipped += s.morsels_skipped;
    total.rows_scanned += s.rows_scanned;
    total.rows_skipped += s.rows_skipped;
    total.rows_forgotten_skipped += s.rows_forgotten_skipped;
    total.busy_ns += s.busy_ns;
  }
  return total;
}

std::string QueryProfile::ToText() const {
  std::string out;
  // Capitalized operator name, EXPLAIN style.
  std::string title(op);
  if (!title.empty() && title[0] >= 'a' && title[0] <= 'z') {
    title[0] = static_cast<char>(title[0] - 'a' + 'A');
  }
  AppendFmt(&out,
            "%s  (plan=%s engine=%s visibility=%s parallelism=%d)  "
            "[query %llu]\n",
            title.c_str(), PlanKindName(plan), EngineName(engine),
            VisibilityName(visibility), parallelism,
            static_cast<unsigned long long>(query_id));
  const ShardStats total = Totals();
  AppendFmt(&out,
            "  rows returned: %llu   total: %.3f ms   rows scanned: %llu   "
            "skipped: %llu   forgotten-skipped: %llu\n",
            static_cast<unsigned long long>(rows_returned), Ms(total_ns),
            static_cast<unsigned long long>(total.rows_scanned),
            static_cast<unsigned long long>(total.rows_skipped),
            static_cast<unsigned long long>(total.rows_forgotten_skipped));
  for (const Stage& stage : stages) {
    AppendFmt(&out, "  -> Stage %-10s %9.3f ms\n", stage.name,
              Ms(stage.wall_ns));
  }
  for (size_t s = 0; s < shards.size(); ++s) {
    const ShardStats& sh = shards[s];
    if (shards.size() > 1 && !sh.any()) continue;
    AppendFmt(&out,
              "     -> Shard %-3zu busy %9.3f ms  morsels %llu scanned / "
              "%llu skipped  rows %llu scanned / %llu skipped / %llu "
              "forgotten-skipped\n",
              s, Ms(sh.busy_ns),
              static_cast<unsigned long long>(sh.morsels_scanned),
              static_cast<unsigned long long>(sh.morsels_skipped),
              static_cast<unsigned long long>(sh.rows_scanned),
              static_cast<unsigned long long>(sh.rows_skipped),
              static_cast<unsigned long long>(sh.rows_forgotten_skipped));
  }
  return out;
}

void QueryProfile::AppendJson(std::string* out) const {
  AppendFmt(out,
            "{\"query_id\":%llu,\"op\":\"%s\",\"plan\":\"%s\","
            "\"engine\":\"%s\",\"visibility\":\"%s\",\"parallelism\":%d,"
            "\"total_ns\":%llu,\"rows_returned\":%llu",
            static_cast<unsigned long long>(query_id), op, PlanKindName(plan),
            EngineName(engine), VisibilityName(visibility), parallelism,
            static_cast<unsigned long long>(total_ns),
            static_cast<unsigned long long>(rows_returned));
  out->append(",\"stages\":[");
  for (size_t i = 0; i < stages.size(); ++i) {
    if (i != 0) out->push_back(',');
    AppendFmt(out, "{\"name\":\"%s\",\"wall_ns\":%llu}", stages[i].name,
              static_cast<unsigned long long>(stages[i].wall_ns));
  }
  out->append("],\"shards\":[");
  for (size_t s = 0; s < shards.size(); ++s) {
    if (s != 0) out->push_back(',');
    const ShardStats& sh = shards[s];
    AppendFmt(out,
              "{\"shard\":%zu,\"busy_ns\":%llu,\"morsels_scanned\":%llu,"
              "\"morsels_skipped\":%llu,\"rows_scanned\":%llu,"
              "\"rows_skipped\":%llu,\"rows_forgotten_skipped\":%llu}",
              s, static_cast<unsigned long long>(sh.busy_ns),
              static_cast<unsigned long long>(sh.morsels_scanned),
              static_cast<unsigned long long>(sh.morsels_skipped),
              static_cast<unsigned long long>(sh.rows_scanned),
              static_cast<unsigned long long>(sh.rows_skipped),
              static_cast<unsigned long long>(sh.rows_forgotten_skipped));
  }
  out->append("]}");
}

std::string QueryProfile::ToJson() const {
  std::string out;
  AppendJson(&out);
  return out;
}

#if !defined(AMNESIA_NO_METRICS)

namespace {

// The innermost in-flight profiled query's collector. Installed before the
// operator call and uninstalled after it returns; ParallelFor joins its
// workers inside the call, so no worker can observe the pointer after
// uninstall (release/acquire pairs keep TSan happy about the handoff).
std::atomic<ProfileCollector*> g_active_collector{nullptr};

}  // namespace

ProfileCollector* ActiveProfileCollector() {
  return g_active_collector.load(std::memory_order_acquire);
}

ProfileCollector::ProfileCollector(uint32_t num_shards)
    : slots_(num_shards == 0 ? 1 : num_shards) {}

void ProfileCollector::NoteMorsel(const Table& table, Visibility visibility,
                                  Engine engine, Morsel morsel,
                                  uint32_t shard, uint64_t busy_ns) {
  Slot& slot = slots_[shard < slots_.size() ? shard : slots_.size() - 1];
  const uint64_t size = morsel.size();
  const uint64_t live =
      visibility == Visibility::kAll ? size : MorselLiveCount(table, morsel);
  // The vectorized kernels' wholesale-skip rule (scalar loops never skip):
  // nothing visible in the morsel means no kernel ran.
  const bool skipped =
      engine == Engine::kVectorized &&
      ((visibility == Visibility::kActiveOnly && live == 0) ||
       (visibility == Visibility::kForgottenOnly && live == size));
  if (skipped) {
    slot.morsels_skipped.fetch_add(1, std::memory_order_relaxed);
    slot.rows_skipped.fetch_add(size, std::memory_order_relaxed);
  } else {
    slot.morsels_scanned.fetch_add(1, std::memory_order_relaxed);
    slot.rows_scanned.fetch_add(size, std::memory_order_relaxed);
  }
  if (visibility == Visibility::kActiveOnly) {
    slot.rows_forgotten_skipped.fetch_add(size - live,
                                          std::memory_order_relaxed);
  }
  slot.busy_ns.fetch_add(busy_ns, std::memory_order_relaxed);
}

void ProfileCollector::Drain(QueryProfile* out) const {
  out->shards.resize(slots_.size());
  for (size_t s = 0; s < slots_.size(); ++s) {
    QueryProfile::ShardStats& sh = out->shards[s];
    const Slot& slot = slots_[s];
    sh.morsels_scanned = slot.morsels_scanned.load(std::memory_order_relaxed);
    sh.morsels_skipped = slot.morsels_skipped.load(std::memory_order_relaxed);
    sh.rows_scanned = slot.rows_scanned.load(std::memory_order_relaxed);
    sh.rows_skipped = slot.rows_skipped.load(std::memory_order_relaxed);
    sh.rows_forgotten_skipped =
        slot.rows_forgotten_skipped.load(std::memory_order_relaxed);
    sh.busy_ns = slot.busy_ns.load(std::memory_order_relaxed);
  }
}

ProfiledQuery::ProfiledQuery(const char* op, PlanKind plan, Engine engine,
                             Visibility visibility, int parallelism,
                             uint32_t num_shards)
    : collector_(num_shards), start_ns_(obs::NowNs()) {
  profile_.query_id = ProfileLog::Global().NextQueryId();
  profile_.op = op;
  profile_.plan = plan;
  profile_.engine = engine;
  profile_.visibility = visibility;
  profile_.parallelism = parallelism;
  previous_ = g_active_collector.exchange(&collector_,
                                          std::memory_order_acq_rel);
}

ProfiledQuery::~ProfiledQuery() { Uninstall(); }

void ProfiledQuery::Uninstall() {
  if (!installed_) return;
  installed_ = false;
  stage_scope_.reset();
  g_active_collector.store(previous_, std::memory_order_release);
}

void ProfiledQuery::Stage(const char* name) {
  // Flush the previous stage's TraceScope BEFORE growing `stages`: its
  // destructor writes through a pointer into the vector.
  stage_scope_.reset();
  profile_.stages.push_back(QueryProfile::Stage{name, 0});
  stage_scope_.emplace(name);
  stage_scope_->Annotate("query_id",
                         static_cast<int64_t>(profile_.query_id));
  stage_scope_->set_duration_out(&profile_.stages.back().wall_ns);
}

QueryProfile ProfiledQuery::Finish(uint64_t rows_returned) {
  Uninstall();
  profile_.total_ns = obs::NowNs() - start_ns_;
  profile_.rows_returned = rows_returned;
  collector_.Drain(&profile_);
  ProfileLog::Global().Record(profile_);
  return profile_;
}

ProfileLog& ProfileLog::Global() {
  static ProfileLog* log = new ProfileLog();
  return *log;
}

uint64_t ProfileLog::NextQueryId() {
  return next_query_id_.fetch_add(1, std::memory_order_relaxed);
}

void ProfileLog::Record(QueryProfile profile) {
  std::lock_guard<std::mutex> lock(mu_);
  ring_[next_ % kCapacity] = std::move(profile);
  ++next_;
}

std::vector<QueryProfile> ProfileLog::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<QueryProfile> out;
  const uint64_t retained = next_ < kCapacity ? next_ : kCapacity;
  out.reserve(retained);
  for (uint64_t i = next_ - retained; i < next_; ++i) {
    out.push_back(ring_[i % kCapacity]);
  }
  return out;
}

std::optional<QueryProfile> ProfileLog::Find(uint64_t query_id) const {
  std::lock_guard<std::mutex> lock(mu_);
  const uint64_t retained = next_ < kCapacity ? next_ : kCapacity;
  for (uint64_t i = next_ - retained; i < next_; ++i) {
    if (ring_[i % kCapacity].query_id == query_id) {
      return ring_[i % kCapacity];
    }
  }
  return std::nullopt;
}

uint64_t ProfileLog::total_recorded() const {
  std::lock_guard<std::mutex> lock(mu_);
  return next_;
}

#endif  // !AMNESIA_NO_METRICS

}  // namespace amnesia
