// Copyright 2026 The AmnesiaDB Authors
//
// Per-query execution profiles: an opt-in EXPLAIN-ANALYZE layer over the
// scan operators. A profiled query installs a ProfileCollector for the
// duration of the operator call; the scan dispatch sites (query/scan.cc)
// bracket every morsel-kernel invocation with a ProfiledMorselScope, which
// is a single relaxed atomic load when no collector is installed and
// otherwise attributes the morsel's rows (scanned / wholesale-skipped /
// forgotten-skipped), engine and busy time to the shard that ran it.
// Per-stage wall times reuse TraceScope's bracket (set_duration_out), so
// the same timing feeds the trace ring, the scan_ns histogram and the
// profile. Finished profiles land in a bounded global ring (ProfileLog)
// keyed by query id — the data behind the introspection server's
// /profilez endpoint — and render as an EXPLAIN-ANALYZE-style text tree
// or JSON.
//
// Profiling observes the unchanged execution path (the hooks never alter
// kernel decisions), so a profiled query returns bit-identical results to
// the unprofiled run. One profile may be active at a time; a concurrently
// installed profile stacks (the newest collects, the previous resumes when
// it finishes) — profiles are per-process diagnostics, not a tenancy
// mechanism. Under AMNESIA_NO_METRICS every hook compiles to a no-op and
// ProfileLog stays empty.

#ifndef AMNESIA_QUERY_PROFILE_H_
#define AMNESIA_QUERY_PROFILE_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "obs/trace.h"
#include "query/executor.h"
#include "query/scan.h"
#include "storage/table.h"

namespace amnesia {

/// \brief Readable names for the profile/exposition enums.
const char* PlanKindName(PlanKind plan);
const char* EngineName(Engine engine);
const char* VisibilityName(Visibility visibility);

/// \brief Finished profile of one scan/count/aggregate query: the
/// operator tree /profilez serves and EXPLAIN renders.
struct QueryProfile {
  /// Per-shard leaf of the operator tree (unsharded queries have one).
  struct ShardStats {
    uint64_t morsels_scanned = 0;  ///< Morsels a kernel actually processed.
    uint64_t morsels_skipped = 0;  ///< Morsels skipped wholesale.
    uint64_t rows_scanned = 0;     ///< Rows inside scanned morsels.
    uint64_t rows_skipped = 0;     ///< Rows inside wholesale-skipped morsels.
    /// Forgotten rows the query's visibility excluded without returning
    /// them (kActiveOnly: dead rows of scanned + skipped morsels) — the
    /// amnesia dividend this query collected.
    uint64_t rows_forgotten_skipped = 0;
    uint64_t busy_ns = 0;  ///< Summed kernel time attributed to the shard.

    bool any() const {
      return morsels_scanned != 0 || morsels_skipped != 0 || busy_ns != 0;
    }
  };

  /// One timed stage (wall time from the stage's TraceScope bracket).
  struct Stage {
    const char* name = "";  ///< String literal owned by the call site.
    uint64_t wall_ns = 0;
  };

  uint64_t query_id = 0;
  const char* op = "";  ///< "scan" | "count" | "aggregate".
  PlanKind plan = PlanKind::kFullScan;
  Engine engine = Engine::kScalar;
  Visibility visibility = Visibility::kActiveOnly;
  int parallelism = 1;
  uint64_t total_ns = 0;
  uint64_t rows_returned = 0;
  std::vector<Stage> stages;
  std::vector<ShardStats> shards;  ///< Indexed by shard id.

  /// Sums of the per-shard leaves.
  ShardStats Totals() const;

  /// EXPLAIN-ANALYZE-style text tree.
  std::string ToText() const;

  /// JSON object rendering (appended to `out`).
  void AppendJson(std::string* out) const;
  std::string ToJson() const;
};

#if !defined(AMNESIA_NO_METRICS)

/// \brief Thread-safe per-shard accumulation slots for one in-flight
/// profiled query. Pool workers contribute concurrently via relaxed
/// atomics on cache-line-separated slots.
class ProfileCollector {
 public:
  /// `num_shards` sizes the slot array (>= 1; unsharded operators report
  /// into shard 0).
  explicit ProfileCollector(uint32_t num_shards);

  /// Attributes one morsel-kernel invocation. Mirrors the vectorized
  /// kernels' wholesale-skip rule (query/vector_kernels.cc) from the same
  /// MorselLiveCount input, so skip counts match scan.morsels_skipped for
  /// the bracketed operator; scalar kernels never skip.
  void NoteMorsel(const Table& table, Visibility visibility, Engine engine,
                  Morsel morsel, uint32_t shard, uint64_t busy_ns);

  /// Copies the slots into `out->shards`.
  void Drain(QueryProfile* out) const;

 private:
  struct alignas(64) Slot {
    std::atomic<uint64_t> morsels_scanned{0};
    std::atomic<uint64_t> morsels_skipped{0};
    std::atomic<uint64_t> rows_scanned{0};
    std::atomic<uint64_t> rows_skipped{0};
    std::atomic<uint64_t> rows_forgotten_skipped{0};
    std::atomic<uint64_t> busy_ns{0};
  };
  std::vector<Slot> slots_;
};

/// \brief The collector of the innermost in-flight profiled query, or
/// nullptr (the common case: one acquire load and no further work).
ProfileCollector* ActiveProfileCollector();

/// \brief RAII bracket around one morsel-kernel invocation at a scan
/// dispatch site. Costs one atomic load when no profile is active; when
/// one is, times the kernel and reports the morsel to the collector.
class ProfiledMorselScope {
 public:
  ProfiledMorselScope(const Table& table, Visibility visibility,
                      Engine engine, Morsel morsel, uint32_t shard)
      : collector_(ActiveProfileCollector()) {
    if (collector_ == nullptr) return;
    table_ = &table;
    visibility_ = visibility;
    engine_ = engine;
    morsel_ = morsel;
    shard_ = shard;
    start_ns_ = obs::NowNs();
  }

  ~ProfiledMorselScope() {
    if (collector_ == nullptr) return;
    collector_->NoteMorsel(*table_, visibility_, engine_, morsel_, shard_,
                           obs::NowNs() - start_ns_);
  }

  ProfiledMorselScope(const ProfiledMorselScope&) = delete;
  ProfiledMorselScope& operator=(const ProfiledMorselScope&) = delete;

 private:
  ProfileCollector* collector_;
  const Table* table_ = nullptr;
  Visibility visibility_ = Visibility::kActiveOnly;
  Engine engine_ = Engine::kScalar;
  Morsel morsel_{0, 0};
  uint32_t shard_ = 0;
  uint64_t start_ns_ = 0;
};

/// \brief Scope of one profiled query: installs a collector, times stages
/// with TraceScope brackets, and on Finish() records the assembled
/// QueryProfile into ProfileLog::Global().
///
/// Usage (the executor does this when ExecOptions::profile is set; free
/// operator calls can be wrapped the same way):
///
///   ProfiledQuery pq("aggregate", plan, engine, vis, parallelism,
///                    table.num_shards());
///   pq.Stage("execute");
///   auto result = AggregateRangeParallel(table, pred, vis, pool);
///   QueryProfile profile = pq.Finish(1);
class ProfiledQuery {
 public:
  ProfiledQuery(const char* op, PlanKind plan, Engine engine,
                Visibility visibility, int parallelism, uint32_t num_shards);
  ~ProfiledQuery();

  ProfiledQuery(const ProfiledQuery&) = delete;
  ProfiledQuery& operator=(const ProfiledQuery&) = delete;

  /// Closes the open stage (if any) and opens a new TraceScope-timed one.
  /// `name` must be a string literal / static string.
  void Stage(const char* name);

  /// Closes the open stage, uninstalls the collector, records the profile
  /// in ProfileLog::Global() and returns it. Call exactly once.
  QueryProfile Finish(uint64_t rows_returned);

  uint64_t query_id() const { return profile_.query_id; }

 private:
  void Uninstall();

  QueryProfile profile_;
  ProfileCollector collector_;
  ProfileCollector* previous_;  ///< Restored on Finish (stacked profiles).
  std::optional<obs::TraceScope> stage_scope_;
  uint64_t start_ns_;
  bool installed_ = true;
};

/// \brief Bounded global ring of the most recent finished profiles,
/// keyed by the monotonically assigned query id.
class ProfileLog {
 public:
  static constexpr size_t kCapacity = 64;

  static ProfileLog& Global();

  /// Assigns the next query id (1-based).
  uint64_t NextQueryId();

  void Record(QueryProfile profile);

  /// Returns the retained profiles oldest-first (at most kCapacity).
  std::vector<QueryProfile> Snapshot() const;

  /// Returns the retained profile with `query_id`, if still in the ring.
  std::optional<QueryProfile> Find(uint64_t query_id) const;

  /// Total profiles ever recorded.
  uint64_t total_recorded() const;

 private:
  ProfileLog() : ring_(kCapacity) {}

  mutable std::mutex mu_;
  std::atomic<uint64_t> next_query_id_{1};
  std::vector<QueryProfile> ring_;
  uint64_t next_ = 0;  // total recorded; ring slot is next_ % kCapacity
};

#else  // AMNESIA_NO_METRICS

class ProfileCollector {
 public:
  explicit ProfileCollector(uint32_t) {}
  void NoteMorsel(const Table&, Visibility, Engine, Morsel, uint32_t,
                  uint64_t) {}
  void Drain(QueryProfile*) const {}
};

inline ProfileCollector* ActiveProfileCollector() { return nullptr; }

class ProfiledMorselScope {
 public:
  ProfiledMorselScope(const Table&, Visibility, Engine, Morsel, uint32_t) {}
};

class ProfiledQuery {
 public:
  ProfiledQuery(const char* op, PlanKind plan, Engine engine,
                Visibility visibility, int parallelism, uint32_t num_shards) {
    profile_.op = op;
    profile_.plan = plan;
    profile_.engine = engine;
    profile_.visibility = visibility;
    profile_.parallelism = parallelism;
    profile_.shards.resize(num_shards == 0 ? 1 : num_shards);
  }
  void Stage(const char*) {}
  QueryProfile Finish(uint64_t rows_returned) {
    QueryProfile out = profile_;
    out.rows_returned = rows_returned;
    return out;
  }
  uint64_t query_id() const { return 0; }

 private:
  QueryProfile profile_;
};

class ProfileLog {
 public:
  static constexpr size_t kCapacity = 64;
  static ProfileLog& Global() {
    static ProfileLog log;
    return log;
  }
  uint64_t NextQueryId() { return 0; }
  void Record(QueryProfile) {}
  std::vector<QueryProfile> Snapshot() const { return {}; }
  std::optional<QueryProfile> Find(uint64_t) const { return std::nullopt; }
  uint64_t total_recorded() const { return 0; }
};

#endif  // AMNESIA_NO_METRICS

}  // namespace amnesia

#endif  // AMNESIA_QUERY_PROFILE_H_
