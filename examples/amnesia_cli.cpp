// Copyright 2026 The AmnesiaDB Authors
//
// Command-line front end to the Data Amnesia Simulator — the modern
// equivalent of the paper's parameterized C program. Every §2 knob is a
// flag; output is CSV (one row per batch) plus the final amnesia map.
//
//   $ ./build/examples/amnesia_cli --policy=rot --distribution=zipf
//         --dbsize=1000 --upd-perc=0.8 --batches=10 --queries=1000
//
// Run with --help for the full flag list.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "common/ascii_chart.h"
#include "sim/simulator.h"

using namespace amnesia;

namespace {

void Usage() {
  std::printf(
      "amnesia_cli — the Data Amnesia Simulator (CIDR'17) as a CLI\n\n"
      "flags (all optional):\n"
      "  --policy=NAME        fifo|uniform|ante|rot|inverse-rot|area|pair|"
      "aligned (default uniform)\n"
      "  --distribution=NAME  serial|uniform|normal|zipf (default uniform)\n"
      "  --backend=NAME       mark-only|delete|cold-storage|summary|"
      "index-skip (default mark-only)\n"
      "  --anchor=NAME        active|history|domain|recent (default history)\n"
      "  --dbsize=N           constant active-tuple budget (default 1000)\n"
      "  --upd-perc=F         update volatility per batch (default 0.2)\n"
      "  --batches=N          update rounds (default 10)\n"
      "  --queries=N          range queries per round (default 1000)\n"
      "  --aggregates=N       AVG queries per round (default 0)\n"
      "  --selectivity=F      total range width as fraction of max-seen "
      "(default 0.02)\n"
      "  --domain=N           value domain upper bound (default 100000)\n"
      "  --seed=N             RNG seed (default 42)\n"
      "  --plan=NAME          scan|brin|btree (default scan)\n"
      "  --map-buckets=N      amnesia-map resolution (default 60)\n");
}

bool ParseFlag(const char* arg, const char* name, std::string* out) {
  const std::string prefix = std::string("--") + name + "=";
  if (std::strncmp(arg, prefix.c_str(), prefix.size()) != 0) return false;
  *out = arg + prefix.size();
  return true;
}

StatusOr<BackendKind> BackendFromString(const std::string& name) {
  if (name == "mark-only" || name == "mark") return BackendKind::kMarkOnly;
  if (name == "delete") return BackendKind::kDelete;
  if (name == "cold-storage" || name == "cold") {
    return BackendKind::kColdStorage;
  }
  if (name == "summary") return BackendKind::kSummary;
  if (name == "index-skip") return BackendKind::kIndexSkip;
  return Status::InvalidArgument("unknown backend '" + name + "'");
}

StatusOr<QueryAnchor> AnchorFromString(const std::string& name) {
  if (name == "active") return QueryAnchor::kActiveTuple;
  if (name == "history") return QueryAnchor::kHistoryTuple;
  if (name == "domain") return QueryAnchor::kUniformDomain;
  if (name == "recent") return QueryAnchor::kRecentTuple;
  return Status::InvalidArgument("unknown anchor '" + name + "'");
}

StatusOr<PlanKind> PlanFromString(const std::string& name) {
  if (name == "scan") return PlanKind::kFullScan;
  if (name == "brin") return PlanKind::kBrinScan;
  if (name == "btree") return PlanKind::kBTreeProbe;
  return Status::InvalidArgument("unknown plan '" + name + "'");
}

}  // namespace

int main(int argc, char** argv) {
  SimulationConfig config;
  config.distribution.domain_hi = 100'000;
  size_t map_buckets = 60;

  for (int i = 1; i < argc; ++i) {
    std::string v;
    if (std::strcmp(argv[i], "--help") == 0) {
      Usage();
      return 0;
    } else if (ParseFlag(argv[i], "policy", &v)) {
      auto kind = PolicyKindFromString(v);
      if (!kind.ok()) {
        std::fprintf(stderr, "%s\n", kind.status().ToString().c_str());
        return 2;
      }
      config.policy.kind = kind.value();
    } else if (ParseFlag(argv[i], "distribution", &v)) {
      auto kind = DistributionKindFromString(v);
      if (!kind.ok()) {
        std::fprintf(stderr, "%s\n", kind.status().ToString().c_str());
        return 2;
      }
      config.distribution.kind = kind.value();
    } else if (ParseFlag(argv[i], "backend", &v)) {
      auto kind = BackendFromString(v);
      if (!kind.ok()) {
        std::fprintf(stderr, "%s\n", kind.status().ToString().c_str());
        return 2;
      }
      config.backend = kind.value();
    } else if (ParseFlag(argv[i], "anchor", &v)) {
      auto anchor = AnchorFromString(v);
      if (!anchor.ok()) {
        std::fprintf(stderr, "%s\n", anchor.status().ToString().c_str());
        return 2;
      }
      config.query.anchor = anchor.value();
    } else if (ParseFlag(argv[i], "plan", &v)) {
      auto plan = PlanFromString(v);
      if (!plan.ok()) {
        std::fprintf(stderr, "%s\n", plan.status().ToString().c_str());
        return 2;
      }
      config.plan = plan.value();
    } else if (ParseFlag(argv[i], "dbsize", &v)) {
      config.dbsize = std::strtoull(v.c_str(), nullptr, 10);
    } else if (ParseFlag(argv[i], "upd-perc", &v)) {
      config.upd_perc = std::strtod(v.c_str(), nullptr);
    } else if (ParseFlag(argv[i], "batches", &v)) {
      config.num_batches = static_cast<uint32_t>(std::strtoul(v.c_str(), nullptr, 10));
    } else if (ParseFlag(argv[i], "queries", &v)) {
      config.queries_per_batch = static_cast<uint32_t>(std::strtoul(v.c_str(), nullptr, 10));
    } else if (ParseFlag(argv[i], "aggregates", &v)) {
      config.aggregate_queries_per_batch = static_cast<uint32_t>(std::strtoul(v.c_str(), nullptr, 10));
    } else if (ParseFlag(argv[i], "selectivity", &v)) {
      config.query.selectivity = std::strtod(v.c_str(), nullptr);
    } else if (ParseFlag(argv[i], "domain", &v)) {
      config.distribution.domain_hi = std::strtoll(v.c_str(), nullptr, 10);
    } else if (ParseFlag(argv[i], "seed", &v)) {
      config.seed = std::strtoull(v.c_str(), nullptr, 10);
    } else if (ParseFlag(argv[i], "map-buckets", &v)) {
      map_buckets = std::strtoull(v.c_str(), nullptr, 10);
    } else {
      std::fprintf(stderr, "unknown flag '%s' (try --help)\n", argv[i]);
      return 2;
    }
  }

  auto sim_or = Simulator::Make(config);
  if (!sim_or.ok()) {
    std::fprintf(stderr, "config: %s\n", sim_or.status().ToString().c_str());
    return 1;
  }
  auto result_or = sim_or.value()->Run();
  if (!result_or.ok()) {
    std::fprintf(stderr, "run: %s\n", result_or.status().ToString().c_str());
    return 1;
  }
  const SimulationResult& result = result_or.value();

  std::printf("# policy=%s distribution=%s backend=%s anchor=%s dbsize=%llu "
              "upd_perc=%.2f seed=%llu\n",
              std::string(PolicyKindToString(config.policy.kind)).c_str(),
              std::string(DistributionKindToString(config.distribution.kind))
                  .c_str(),
              std::string(BackendKindToString(config.backend)).c_str(),
              std::string(QueryAnchorToString(config.query.anchor)).c_str(),
              static_cast<unsigned long long>(config.dbsize),
              config.upd_perc,
              static_cast<unsigned long long>(config.seed));
  std::printf(
      "batch,active,forgotten_total,avg_rf,avg_mf,mean_pf,error_margin,"
      "agg_precision,agg_rel_error\n");
  for (const BatchMetrics& m : result.batches) {
    std::printf("%u,%llu,%llu,%.3f,%.3f,%.4f,%.4f,%.4f,%.6f\n", m.batch,
                static_cast<unsigned long long>(m.active),
                static_cast<unsigned long long>(m.forgotten_total), m.avg_rf,
                m.avg_mf, m.mean_pf, m.error_margin, m.aggregate_precision,
                m.aggregate_rel_error);
  }

  ShadeMap map(map_buckets);
  map.AddRow(std::string(PolicyKindToString(config.policy.kind)),
             result.timeline_retention);
  map.SetCaption("insertion timeline ->  (bright = still active)");
  std::printf("\n%s", map.Render().c_str());
  return 0;
}
