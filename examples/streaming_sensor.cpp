// Copyright 2026 The AmnesiaDB Authors
//
// Streaming-sensor scenario (§3.1: "Streaming database applications are
// good examples for this kind of amnesia, where all you can see is what's
// in the stream buffer").
//
// A sensor emits monotonically timestamped readings (serial distribution).
// The table holds a fixed window under FIFO amnesia with the cold-storage
// backend: evicted readings move to a Glacier-style archive. A dashboard
// keeps querying the most recent readings (precise), an analyst later asks
// for last week's data (gone from the hot store — recallable from cold at
// a simulated cost of hours and dollars).
//
//   $ ./build/examples/streaming_sensor

#include <cstdio>

#include "sim/simulator.h"

using namespace amnesia;

namespace {

template <typename T>
T Check(StatusOr<T> result, const char* what) {
  if (!result.ok()) {
    std::fprintf(stderr, "%s: %s\n", what, result.status().ToString().c_str());
    std::exit(1);
  }
  return std::move(result).value();
}

}  // namespace

int main() {
  SimulationConfig config;
  config.seed = 2026;
  config.dbsize = 2000;               // the stream buffer
  config.upd_perc = 0.5;              // 1000 new readings per round
  config.num_batches = 12;
  config.queries_per_batch = 500;
  config.distribution.kind = DistributionKind::kSerial;  // timestamps
  config.policy.kind = PolicyKind::kFifo;
  config.backend = BackendKind::kColdStorage;
  config.query.anchor = QueryAnchor::kRecentTuple;  // dashboard behaviour
  config.query.recency_bias = 16.0;
  config.query.selectivity = 0.01;

  auto sim_or = Simulator::Make(config);
  if (!sim_or.ok()) {
    std::fprintf(stderr, "setup: %s\n", sim_or.status().ToString().c_str());
    return 1;
  }
  Simulator& sim = *sim_or.value();
  const SimulationResult result = Check(sim.Run(), "run");

  std::printf("Streaming sensor: FIFO window of %llu readings, %u rounds\n",
              static_cast<unsigned long long>(config.dbsize),
              config.num_batches);
  std::printf("round,dashboard_precision,readings_archived\n");
  for (const BatchMetrics& m : result.batches) {
    std::printf("%u,%.4f,%llu\n", m.batch, m.mean_pf,
                static_cast<unsigned long long>(m.forgotten_total));
  }

  // The dashboard stayed precise on recent data the whole time.
  std::printf("\nDashboard (recent-window) precision at the end: %.3f\n",
              result.batches.back().mean_pf);

  // The analyst asks for an old timestamp range: it is NOT in the hot
  // store any more...
  const Value old_lo = 100, old_hi = 600;
  const auto hot = ScanRange(sim.table(), RangePredicate{0, old_lo, old_hi},
                             Visibility::kActiveOnly);
  std::printf("\nAnalyst query for timestamps [%lld, %lld): %llu hot rows\n",
              static_cast<long long>(old_lo), static_cast<long long>(old_hi),
              static_cast<unsigned long long>(Check(hot, "scan").size()));

  // ...but it is recallable from the archive, at a price.
  auto& cold = const_cast<ColdStore&>(sim.cold_store());
  const auto recalled = cold.RecallValueRange(old_lo, old_hi);
  const auto& acct = cold.accounting();
  std::printf("Archive recall returned %llu readings\n",
              static_cast<unsigned long long>(recalled.size()));
  std::printf("  simulated latency: %.2f hours\n",
              acct.simulated_latency_ms / 3.6e6);
  std::printf("  simulated cost:    $%.9f (model: $%.0f/TB retrieval)\n",
              acct.simulated_recall_usd, cold.model().retrieval_usd_per_tb);
  std::printf("  archive holding:   $%.9f/year for %llu readings\n",
              cold.HoldingCostPerYearUsd(),
              static_cast<unsigned long long>(cold.size()));

  // Explicit recovery (§5: forgotten data only reappears when "the user
  // takes the action and recovers ... explicitly"): revive one reading.
  if (!recalled.empty()) {
    Table& table = sim.mutable_table();
    const Status revive = table.Revive(recalled.front().origin_row);
    std::printf("\nExplicit recovery of reading @%llu: %s\n",
                static_cast<unsigned long long>(recalled.front().origin_row),
                revive.ok() ? "restored to the hot store" : revive.ToString().c_str());
  }
  return 0;
}
