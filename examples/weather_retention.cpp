// Copyright 2026 The AmnesiaDB Authors
//
// Weather-archive scenario (§5: "in a database with historical weather
// information, data from areas that have constant weather patterns can be
// forgotten in a few weeks time, where for areas that exhibit strange
// meteorological phenomena the data should be kept for longer periods").
//
// Two stations share one storage budget philosophy but differ in signal:
//   * station CALM   — readings cluster tightly (normal, redundant),
//   * station STORMY — heavy-tailed readings (zipf-scattered, surprising).
// Both run the rot policy; analysts keep querying the anomalous ranges, so
// STORMY's tuples accrue access frequency and survive while CALM's rot
// away. We report retention and the precision the analysts observe.
//
//   $ ./build/examples/weather_retention

#include <cstdio>
#include <string>

#include "sim/simulator.h"

using namespace amnesia;

namespace {

struct StationReport {
  std::string name;
  double final_precision = 0.0;
  double oldest_half_retention = 0.0;
  uint64_t forgotten = 0;
};

StationReport RunStation(const std::string& name, DistributionKind dist,
                         QueryAnchor anchor) {
  SimulationConfig config;
  config.seed = 777;
  config.dbsize = 1500;
  config.upd_perc = 0.4;
  config.num_batches = 10;
  config.queries_per_batch = 800;
  config.distribution.kind = dist;
  config.policy.kind = PolicyKind::kRot;
  config.policy.rot.protect_latest_batches = 1;
  config.query.anchor = anchor;
  config.query.selectivity = 0.03;

  auto sim = Simulator::Make(config).value();
  auto result = sim->Run();
  if (!result.ok()) {
    std::fprintf(stderr, "%s: %s\n", name.c_str(),
                 result.status().ToString().c_str());
    std::exit(1);
  }
  StationReport report;
  report.name = name;
  report.final_precision = result->batches.back().mean_pf;
  const auto& timeline = result->timeline_retention;
  double old_half = 0.0;
  for (size_t i = 0; i < timeline.size() / 2; ++i) old_half += timeline[i];
  report.oldest_half_retention = old_half / (timeline.size() / 2);
  report.forgotten = result->controller.tuples_forgotten;
  return report;
}

}  // namespace

int main() {
  std::printf(
      "Weather archive under rot amnesia: redundant station vs anomalous "
      "station\n\n");

  // CALM: tightly clustered normal readings; analysts sample the whole
  // history uniformly — every tuple looks like every other, frequencies
  // spread thin, old readings rot.
  const StationReport calm =
      RunStation("CALM", DistributionKind::kNormal,
                 QueryAnchor::kHistoryTuple);

  // STORMY: zipf-scattered extremes; analysts anchor on active anomalies,
  // repeatedly touching the hot outliers, which therefore refuse to rot.
  const StationReport stormy =
      RunStation("STORMY", DistributionKind::kZipf,
                 QueryAnchor::kActiveTuple);

  std::printf("station,final_precision,oldest_half_retention,forgotten\n");
  for (const StationReport& r : {calm, stormy}) {
    std::printf("%s,%.4f,%.4f,%llu\n", r.name.c_str(), r.final_precision,
                r.oldest_half_retention,
                static_cast<unsigned long long>(r.forgotten));
  }

  std::printf(
      "\nReading: STORMY's frequently-queried anomalies keep their history\n"
      "alive (higher old-data retention and precision) while CALM's\n"
      "redundant readings are forgotten early — the per-application amnesia\n"
      "the paper's weather example calls for, with zero knobs beyond the\n"
      "query workload itself.\n");
  return 0;
}
