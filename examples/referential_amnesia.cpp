// Copyright 2026 The AmnesiaDB Authors
//
// Referential amnesia (§5): "foreign key relationships put a hard boundary
// on what we can forget. Should forgetting a key value be forbidden unless
// it is not referenced any more? Or should we cascade by forgetting all
// related tuples?" — both answers, demonstrated on a customers/orders
// schema.
//
//   $ ./build/examples/referential_amnesia

#include <cstdio>

#include "amnesia/referential.h"
#include "storage/database.h"

using namespace amnesia;

int main() {
  Database db;
  Table* customers =
      db.CreateTable("customers", Schema::SingleColumn("id", 0, 100)).value();
  Table* orders =
      db.CreateTable("orders", Schema::SingleColumn("customer_id", 0, 100))
          .value();
  if (!db.AddForeignKey(ForeignKey{"orders", 0, "customers", 0}).ok()) {
    return 1;
  }

  // Customer 1 has two orders; customer 2 has none.
  const RowId alice = customers->AppendRow({1}).value();
  const RowId bob = customers->AppendRow({2}).value();
  (void)orders->AppendRow({1}).value();
  (void)orders->AppendRow({1}).value();

  std::printf("Schema: orders.customer_id -> customers.id\n");
  std::printf("customers: {1 (2 orders), 2 (no orders)}\n\n");

  // --- Restrict semantics -------------------------------------------
  ReferentialForgetter restrict(&db, ReferentialAction::kRestrict);
  const auto blocked = restrict.Forget("customers", alice);
  std::printf("RESTRICT forget(customer 1): %s\n",
              blocked.ok() ? "allowed?!" : blocked.status().ToString().c_str());
  const auto allowed = restrict.Forget("customers", bob);
  std::printf("RESTRICT forget(customer 2): %s (%llu tuple)\n",
              allowed.ok() ? "forgotten" : allowed.status().ToString().c_str(),
              allowed.ok()
                  ? static_cast<unsigned long long>(allowed.value().total)
                  : 0ull);

  // --- Cascade semantics --------------------------------------------
  ReferentialForgetter cascade(&db, ReferentialAction::kCascade);
  const auto swept = cascade.Forget("customers", alice);
  if (!swept.ok()) {
    std::fprintf(stderr, "%s\n", swept.status().ToString().c_str());
    return 1;
  }
  std::printf("\nCASCADE forget(customer 1): %llu tuples total\n",
              static_cast<unsigned long long>(swept.value().total));
  for (const auto& [t, n] : swept.value().forgotten_per_table) {
    std::printf("  %s: %llu forgotten\n", t.c_str(),
                static_cast<unsigned long long>(n));
  }

  const Status integrity = db.CheckReferentialIntegrity();
  std::printf("\nReferential integrity after amnesia: %s\n",
              integrity.ToString().c_str());
  std::printf("active customers: %llu, active orders: %llu\n",
              static_cast<unsigned long long>(customers->num_active()),
              static_cast<unsigned long long>(orders->num_active()));
  return 0;
}
