// Copyright 2026 The AmnesiaDB Authors
//
// Live-introspection walkthrough: builds a sharded table, forgets enough
// of it that the vectorized kernels get real wholesale-skips, runs
// profiled queries, prints their EXPLAIN-ANALYZE trees, and serves the
// whole observability surface over HTTP.
//
//   introspect_demo [--port P] [--rows N] [--shards S] [--no-serve]
//
// With --no-serve the demo just prints the profiles and exits (what the
// CI smoke uses alongside crash_recovery_demo --serve). Otherwise it
// binds 127.0.0.1:P (0 = ephemeral, the default; the bound port is
// printed) and lingers until GET /quitz, so you can explore:
//
//   curl http://127.0.0.1:$PORT/metrics      # Prometheus exposition
//   curl http://127.0.0.1:$PORT/profilez     # the trees printed below
//   curl http://127.0.0.1:$PORT/tracez > t.json   # open in ui.perfetto.dev
//   curl http://127.0.0.1:$PORT/quitz        # let the demo exit

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "common/thread_pool.h"
#include "obs/trace.h"
#include "query/profile.h"
#include "query/scan.h"
#include "server/introspect.h"
#include "storage/schema.h"
#include "storage/sharded_table.h"

using namespace amnesia;

namespace {

int Fail(const std::string& what) {
  std::fprintf(stderr, "FAIL: %s\n", what.c_str());
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  int port = 0;
  uint64_t rows = 1'200'000;
  uint32_t shards = 4;
  bool serve = true;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--no-serve") == 0) {
      serve = false;
    } else if (std::strcmp(argv[i], "--port") == 0 && i + 1 < argc) {
      port = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--rows") == 0 && i + 1 < argc) {
      rows = std::strtoull(argv[++i], nullptr, 10);
    } else if (std::strcmp(argv[i], "--shards") == 0 && i + 1 < argc) {
      shards = static_cast<uint32_t>(std::atoi(argv[++i]));
    } else {
      std::fprintf(stderr,
                   "usage: %s [--port P] [--rows N] [--shards S] "
                   "[--no-serve]\n",
                   argv[0]);
      return 2;
    }
  }

  // 1. Ingest: one value column, round-robin across shards.
  auto table = ShardedTable::Make(Schema::SingleColumn("a", 0, 1'000'000),
                                  shards);
  if (!table.ok()) return Fail(table.status().ToString());
  {
    obs::TraceScope trace("demo.ingest");
    Rng rng(7);
    std::vector<std::vector<Value>> columns(1);
    columns[0].reserve(rows);
    for (uint64_t i = 0; i < rows; ++i) {
      columns[0].push_back(rng.UniformInt(0, 999'999));
    }
    auto appended = table->AppendColumns(columns);
    if (!appended.ok()) return Fail(appended.status().ToString());
    trace.Annotate("rows", static_cast<int64_t>(*appended));
  }

  // 2. Forget. Two flavors so the profile shows both effects: the first
  //    two morsels of every odd shard are forgotten entirely (the
  //    vectorized engine skips them wholesale — morsels_skipped), and 10%
  //    of the remaining rows are forgotten at random (visibility filters
  //    them row-wise — rows_forgotten_skipped).
  {
    obs::TraceScope trace("demo.forget");
    Rng rng(11);
    uint64_t forgotten = 0;
    for (uint32_t s = 0; s < table->num_shards(); ++s) {
      Table& shard = table->mutable_shard(s).mutable_table();
      const uint64_t n = shard.num_rows();
      const uint64_t wholesale =
          s % 2 == 1 ? std::min<uint64_t>(n, 2 * kDefaultMorselRows) : 0;
      for (RowId r = 0; r < n; ++r) {
        if (r < wholesale || rng.Bernoulli(0.1)) {
          if (shard.Forget(r).ok()) ++forgotten;
        }
      }
    }
    trace.Annotate("rows", static_cast<int64_t>(forgotten));
  }

  // 3. Profiled queries over the amnesic view: a serial scalar count (the
  //    cross-check oracle) and the same aggregate on the vectorized
  //    parallel path. Profiling only observes, so the counts must agree
  //    bit-exactly.
  const RangePredicate pred{0, 250'000, 750'000};
  uint64_t scalar_count = 0;
  {
    ProfiledQuery pq("count", PlanKind::kFullScan, Engine::kScalar,
                     Visibility::kActiveOnly, /*parallelism=*/1,
                     table->num_shards());
    pq.Stage("execute");
    auto count = CountRange(*table, pred, Visibility::kActiveOnly,
                            Engine::kScalar);
    if (!count.ok()) return Fail(count.status().ToString());
    scalar_count = *count;
    std::printf("%s\n", pq.Finish(*count).ToText().c_str());
  }
  {
    ThreadPool pool(3);
    ProfiledQuery pq("aggregate", PlanKind::kFullScan, Engine::kVectorized,
                     Visibility::kActiveOnly, /*parallelism=*/4,
                     table->num_shards());
    pq.Stage("execute");
    auto agg = AggregateRangeParallel(*table, pred, Visibility::kActiveOnly,
                                      pool, kDefaultMorselRows,
                                      /*max_workers=*/4, Engine::kVectorized);
    if (!agg.ok()) return Fail(agg.status().ToString());
    const QueryProfile profile = pq.Finish(agg->count);
    std::printf("%s\n", profile.ToText().c_str());
    if (agg->count != scalar_count) {
      return Fail("vectorized count diverged from the scalar oracle");
    }
    std::printf("engines agree: count=%llu avg=%.3f (profiled runs are "
                "bit-identical to unprofiled ones)\n\n",
                static_cast<unsigned long long>(agg->count), agg->avg);
  }

  if (!serve) return 0;

  // 4. Serve everything the run just produced.
  server::IntrospectionServer srv;
  server::IntrospectionOptions opts;
  opts.port = static_cast<uint16_t>(port);
  opts.readiness_probes.push_back({"demo", [] { return Status::OK(); }});
  Status st = srv.Start(std::move(opts));
  if (!st.ok()) return Fail(st.ToString());
  std::printf("introspection server at http://127.0.0.1:%u/ "
              "(GET /quitz to exit)\n",
              srv.port());
  std::fflush(stdout);
  while (!srv.quit_requested()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  std::printf("quitz received, shutting down\n");
  return 0;
}
