// Copyright 2026 The AmnesiaDB Authors
//
// Kill-and-recover demo: the CI smoke test for the durability subsystem.
//
//   crash_recovery_demo run <dir> [--batches N] [--kill-at-batch K]
//                             [--backend delete|cold|summary] [--retain R]
//                             [--log-format rewrite|segmented]
//                             [--storage vector|mapped]
//                             [--partition-rows N]
//                             [--dbsize D] [--parallelism P]
//                             [--metrics-every N] [--dump-metrics FILE]
//                             [--serve PORT]
//       Runs the Data Amnesia Simulator with async checkpointing into
//       <dir>. With --kill-at-batch K the process dies via _Exit(42)
//       right after batch K — no destructors, no writer join: whatever
//       reached the filesystem is all recovery gets. --backend routes
//       forgotten tuples into the cold or summary tier (checkpointed in
//       the same manifest v2 commit as the table); --retain R keeps only
//       the newest R checkpoints and truncates the event log below them;
//       --log-format segmented journals into segment files (compaction =
//       whole-segment unlinks) instead of the rewrite-compacted file.
//       Observability knobs (the CI metrics smoke): --dbsize D sizes the
//       table (> 65536 rows spans several morsels, so --parallelism P > 1
//       actually engages the thread pool), --metrics-every N logs a delta
//       summary every N batches, and --dump-metrics FILE writes the final
//       process-wide registry snapshot as JSON to FILE. --serve PORT runs
//       the live introspection server (0 = ephemeral, port printed on
//       stdout) and lingers after the run until GET /quitz — how the CI
//       smoke curls /metrics, /healthz and /tracez against a real run.
//       --storage mapped stores the table's sealed columns as mmap'd
//       partition files under <dir>/storage (--partition-rows sizes
//       them); recovery then re-maps those files from the manifest v3
//       entry instead of deserializing column payloads from the blob.
//
//       --vacuum-age N additionally runs mandatory vacuuming every batch
//       (every tuple older than N batches is forgotten regardless of
//       budget) and --audit 1 appends every forget sweep to the
//       hash-chained audit ledger under <dir>/audit.segs.
//
//   crash_recovery_demo verify <dir> [--backend ...] [--retain R]
//                              [--log-format ...] [--storage ...]
//                              [--partition-rows N] [--audit 1]
//                              [--vacuum-age N]
//       Recovers from <dir> (newest valid manifest + event-log tail
//       replay), re-runs the same seed to the batch the recovered table
//       proves was completed, and asserts the recovered table AND tiers
//       are bit-identical to the uncrashed reference. With --retain R it
//       additionally checks the retention invariants: at most R
//       manifests, no blob unreferenced by them, and an event log that
//       starts at (or below) the oldest retained manifest's covered LSN.
//       With --audit 1 it also walks the audit ledger's hash chain and
//       asserts the ledger's claimed forget totals equal the replayed
//       reality exactly (the kill lands at a batch boundary, where every
//       journaled sweep is also attested). Exits non-zero on any
//       mismatch.
//
//   crash_recovery_demo audit-verify <dir>
//       Offline chain verification only: walks <dir>/audit.segs (or
//       <dir> itself when it already is a ledger directory), prints the
//       chain report, and exits non-zero on a broken chain — what an
//       auditor (and the CI smoke) runs against a copied-out ledger
//       without needing the rest of the database.

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "amnesia/audit_ledger.h"
#include "durability/checkpointer.h"
#include "durability/event_log.h"
#include "durability/log_segments.h"
#include "obs/metrics.h"
#include "sim/simulator.h"
#include "storage/checkpoint.h"

using namespace amnesia;

namespace {

constexpr int kCrashExitCode = 42;

struct DemoFlags {
  uint32_t batches = 10;
  uint32_t kill_at = 0;
  uint32_t retain = 0;
  uint64_t dbsize = 2000;
  int parallelism = 1;
  uint32_t metrics_every = 0;
  std::string dump_metrics;
  int serve = -1;
  BackendKind backend = BackendKind::kDelete;
  LogFormat log_format = LogFormat::kSingleFile;
  StorageBackend storage = StorageBackend::kVector;
  // Small partitions so this short run actually seals several files.
  uint64_t partition_rows = 1024;
  bool audit = false;
  uint32_t vacuum_age = 0;
};

SimulationConfig DemoConfig(const std::string& dir, const DemoFlags& flags) {
  SimulationConfig config;
  config.seed = 20260731;
  config.dbsize = flags.dbsize;
  config.upd_perc = 0.3;
  config.num_batches = flags.batches;
  config.queries_per_batch = 50;
  config.policy.kind = PolicyKind::kFifo;
  config.backend = flags.backend;
  // Access counts are not journaled; keep recovery bit-exact. (Scan
  // parallelism is also recovery-safe: forgets run serially either way.)
  config.record_access = false;
  config.parallelism = flags.parallelism;
  config.metrics_report_every_n_batches = flags.metrics_every;
  config.serve_port = flags.serve;
  config.checkpoint_every_n_batches = 2;
  config.checkpoint_dir = dir;
  config.checkpoint_async = true;
  config.checkpoint_retention = flags.retain;
  config.log_format = flags.log_format;
  // Small segments so even this short run rolls several times and the
  // retention GC actually unlinks — the recovery path the demo is for.
  config.log_segment_bytes = 16u << 10;
  config.storage_backend = flags.storage;
  if (flags.storage == StorageBackend::kMapped) {
    config.storage_dir = dir + "/storage";
    config.partition_rows = flags.partition_rows;
  }
  config.vacuum_max_age_batches = flags.vacuum_age;
  config.audit_ledger = flags.audit;
  // Small ledger segments for the same reason as the log segments above.
  config.audit_segment_bytes = 4u << 10;
  return config;
}

int Fail(const std::string& what) {
  std::fprintf(stderr, "FAIL: %s\n", what.c_str());
  return 1;
}

int Run(const std::string& dir, const DemoFlags& flags) {
  // Mapped storage nests its partition directory under <dir>; make sure
  // the parent exists before Wire() tries to mkdir <dir>/storage.
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) return Fail("cannot create " + dir + ": " + ec.message());
  auto sim = Simulator::Make(DemoConfig(dir, flags));
  if (!sim.ok()) return Fail("config: " + sim.status().ToString());
  Status st = sim.value()->Initialize();
  if (!st.ok()) return Fail("initialize: " + st.ToString());
  for (uint32_t b = 1; b <= flags.batches; ++b) {
    auto metrics = sim.value()->StepBatch();
    if (!metrics.ok()) return Fail("batch: " + metrics.status().ToString());
    std::printf("batch %u: inserted=%llu active=%llu forgotten=%llu\n", b,
                static_cast<unsigned long long>(metrics->inserted),
                static_cast<unsigned long long>(metrics->active),
                static_cast<unsigned long long>(metrics->forgotten_total));
    if (b == flags.kill_at) {
      std::printf("simulating crash after batch %u (_Exit, no cleanup)\n",
                  b);
      std::fflush(stdout);
      std::_Exit(kCrashExitCode);
    }
  }
  st = sim.value()->FlushCheckpoints();
  if (!st.ok()) return Fail("flush: " + st.ToString());
  std::printf("completed %u batches without crashing\n", flags.batches);
  if (!flags.dump_metrics.empty()) {
    const std::string json = obs::MetricsRegistry::Global().DumpJson();
    std::FILE* f = std::fopen(flags.dump_metrics.c_str(), "wb");
    if (f == nullptr) return Fail("cannot open " + flags.dump_metrics);
    const bool wrote =
        std::fwrite(json.data(), 1, json.size(), f) == json.size();
    if (std::fclose(f) != 0 || !wrote) {
      return Fail("cannot write " + flags.dump_metrics);
    }
    std::printf("metrics snapshot written to %s (%zu bytes)\n",
                flags.dump_metrics.c_str(), json.size());
  }
  if (flags.serve >= 0) {
    // Linger so the CI smoke (or an operator) can scrape the finished
    // run; GET /quitz releases the loop without signals.
    const server::IntrospectionServer* srv =
        sim.value()->introspection_server();
    std::printf("introspection server at http://127.0.0.1:%d/ "
                "(GET /quitz to exit)\n",
                sim.value()->introspection_port());
    std::fflush(stdout);
    while (srv != nullptr && !srv->quit_requested()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }
    std::printf("quitz received, shutting down\n");
  }
  return 0;
}

/// Checks the on-disk retention invariants: manifest count, orphan blobs,
/// log base LSN. Returns non-zero (via Fail) on any violation.
int VerifyRetention(const std::string& dir, uint32_t retain,
                    LogFormat log_format) {
  namespace fs = std::filesystem;
  // The kill may have landed between a commit and the end of its GC pass
  // — a legitimate crash point that leaves one in-flight checkpoint's
  // extra manifests/blobs behind. Converge the directory with the same
  // pass the next commit would run, then assert the strict invariants.
  Status gc = CollectCheckpointGarbage(dir, retain);
  if (!gc.ok()) return Fail("gc pass: " + gc.ToString());
  std::vector<uint64_t> ids;
  for (const auto& entry : fs::directory_iterator(dir)) {
    const std::string name = entry.path().filename().string();
    if (name.rfind("MANIFEST-", 0) == 0) {
      ids.push_back(std::strtoull(name.substr(9).c_str(), nullptr, 10));
    }
  }
  if (ids.size() > retain) {
    return Fail("retention " + std::to_string(retain) + " but " +
                std::to_string(ids.size()) + " manifests on disk");
  }
  std::set<std::string> referenced;
  uint64_t oldest_covered = ~uint64_t{0};
  for (uint64_t id : ids) {
    auto bytes = ReadBytesFile(dir + "/MANIFEST-" + std::to_string(id));
    if (!bytes.ok()) return Fail("manifest read: " + bytes.status().ToString());
    auto manifest = DecodeManifest(bytes.value());
    if (!manifest.ok()) {
      return Fail("manifest decode: " + manifest.status().ToString());
    }
    for (const ManifestShard& shard : manifest->shards) {
      referenced.insert(shard.filename);
    }
    if (manifest->cold.present()) referenced.insert(manifest->cold.filename);
    if (manifest->summary.present()) {
      referenced.insert(manifest->summary.filename);
    }
    if (manifest->covered_lsn < oldest_covered) {
      oldest_covered = manifest->covered_lsn;
    }
  }
  for (const auto& entry : fs::directory_iterator(dir)) {
    const std::string name = entry.path().filename().string();
    const bool is_blob = name.rfind("ckpt-", 0) == 0 && name.size() > 5 &&
                         name.rfind(".blob") == name.size() - 5;
    if (is_blob && referenced.count(name) == 0) {
      return Fail("orphan blob survived GC: " + name);
    }
  }
  auto contents = ReadAnyEventLogContents(EventLogPathFor(dir, log_format));
  if (!contents.ok()) return Fail("log: " + contents.status().ToString());
  if (contents->base_lsn > oldest_covered) {
    return Fail("event log truncated past the oldest retained manifest "
                "(base " + std::to_string(contents->base_lsn) + " > covered " +
                std::to_string(oldest_covered) + ")");
  }
  std::printf("RETENTION OK: %zu manifests (<= %u), no orphan blobs, log "
              "base %llu <= oldest covered LSN %llu\n",
              ids.size(), retain,
              static_cast<unsigned long long>(contents->base_lsn),
              static_cast<unsigned long long>(oldest_covered));
  return 0;
}

/// Walks the ledger chain under `dir` (a checkpoint directory or a bare
/// ledger directory) and prints the report. Non-zero on a broken chain.
int AuditVerify(const std::string& dir) {
  std::string ledger_dir = AuditDirFor(dir);
  if (!std::filesystem::exists(ledger_dir)) ledger_dir = dir;
  auto report = VerifyAuditChain(ledger_dir);
  if (!report.ok()) {
    return Fail("audit ledger: " + report.status().ToString());
  }
  if (!report->ok) {
    return Fail("audit chain BROKEN: " + report->detail);
  }
  std::printf("AUDIT CHAIN OK: %llu records, seq [%llu, %llu), head crc32 "
              "0x%08x\n",
              static_cast<unsigned long long>(report->records),
              static_cast<unsigned long long>(report->base_seq),
              static_cast<unsigned long long>(report->next_seq),
              report->chain_crc);
  return 0;
}

/// The ledger-vs-reality cross-check after recovery: the chain must be
/// intact and its claimed totals must equal the replayed table's forget
/// count exactly — the kill lands at a batch boundary, where the flush
/// ordering (journal first, then ledger) has every durable sweep attested.
int VerifyAudit(const std::string& dir, const Table& recovered_table) {
  if (AuditVerify(dir) != 0) return 1;
  auto records = ReadAuditRecords(AuditDirFor(dir));
  if (!records.ok()) {
    return Fail("audit read: " + records.status().ToString());
  }
  uint64_t claimed = 0;
  for (const AuditRecord& r : records.value()) claimed += r.rows_marked;
  const uint64_t replayed = recovered_table.lifetime_forgotten();
  if (claimed != replayed) {
    return Fail("audit ledger claims " + std::to_string(claimed) +
                " forgotten rows but recovery replayed " +
                std::to_string(replayed));
  }
  std::printf("AUDIT OK: ledger attests %llu forgotten rows across %zu "
              "sweeps — exactly what recovery replayed\n",
              static_cast<unsigned long long>(claimed),
              records->size());
  return 0;
}

int Verify(const std::string& dir, const DemoFlags& flags) {
  auto recovered = Recover(dir, EventLogPathFor(dir, flags.log_format));
  if (!recovered.ok()) {
    return Fail("recover: " + recovered.status().ToString());
  }
  if (recovered->shards.size() != 1) return Fail("expected one shard");
  const Table& table = recovered->shards[0];

  // The recovered table is the source of truth for how far the crashed
  // run got: every StepBatch begins exactly one batch, so current_batch
  // counts the completed batches whatever prefix the retention GC
  // truncated away. (The ingest cursor must agree with the rows the
  // table holds — the old full-log cross-check, now snapshot-anchored.)
  const auto batches_completed = static_cast<uint32_t>(table.current_batch());
  std::printf("recovered from checkpoint %llu: replayed %llu events, %u "
              "batches completed before the crash\n",
              static_cast<unsigned long long>(recovered->checkpoint_id),
              static_cast<unsigned long long>(recovered->events_replayed),
              batches_completed);
  if (recovered->ingest_cursor != table.lifetime_inserted()) {
    return Fail("ingest cursor diverges from the recovered table");
  }

  // Reference: the identical simulation, uncrashed, to the same batch.
  DemoFlags plain_flags = flags;
  plain_flags.batches = batches_completed;
  SimulationConfig plain = DemoConfig(dir, plain_flags);
  plain.checkpoint_every_n_batches = 0;
  plain.checkpoint_dir.clear();
  plain.checkpoint_retention = 0;
  plain.audit_ledger = false;  // the reference run attests nothing
  if (plain.storage_backend == StorageBackend::kMapped) {
    // The recovered table above has <dir>/storage mmap'd; the reference
    // run must not clear it out from under those mappings.
    plain.storage_dir = dir + "/refstorage";
  }
  auto reference = Simulator::Make(plain);
  if (!reference.ok()) {
    return Fail("reference config: " + reference.status().ToString());
  }
  Status st = reference.value()->Initialize();
  if (!st.ok()) return Fail("reference init: " + st.ToString());
  for (uint32_t b = 0; b < batches_completed; ++b) {
    auto metrics = reference.value()->StepBatch();
    if (!metrics.ok()) {
      return Fail("reference batch: " + metrics.status().ToString());
    }
  }

  if (table.lifetime_inserted() !=
      reference.value()->table().lifetime_inserted()) {
    return Fail("row count mismatch against the uncrashed reference");
  }
  if (CheckpointTable(table) != CheckpointTable(reference.value()->table())) {
    return Fail("recovered table differs from the uncrashed reference");
  }
  // Manifest v2: the tiers committed with the table and must match too.
  if (!recovered->cold.has_value() || !recovered->summaries.has_value()) {
    return Fail("manifest v2 should carry both tier blobs");
  }
  if (CheckpointColdStore(*recovered->cold) !=
      CheckpointColdStore(reference.value()->cold_store())) {
    return Fail("recovered cold store differs from the reference");
  }
  if (CheckpointSummaryStore(*recovered->summaries) !=
      CheckpointSummaryStore(reference.value()->summary_store())) {
    return Fail("recovered summary store differs from the reference");
  }
  std::printf("RECOVERY OK: %llu rows, %llu active, %llu cold tuples, %zu "
              "summary cells — bit-identical to an uncrashed run of %u "
              "batches\n",
              static_cast<unsigned long long>(table.num_rows()),
              static_cast<unsigned long long>(table.num_active()),
              static_cast<unsigned long long>(recovered->cold->size()),
              recovered->summaries->num_cells(), batches_completed);

  if (flags.audit) {
    const int audit_rc = VerifyAudit(dir, table);
    if (audit_rc != 0) return audit_rc;
  }
  if (flags.retain > 0) {
    return VerifyRetention(dir, flags.retain, flags.log_format);
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) {
    std::fprintf(stderr,
                 "usage: %s run <dir> [--batches N] [--kill-at-batch K]\n"
                 "          [--backend delete|cold|summary] [--retain R]\n"
                 "          [--log-format rewrite|segmented] [--dbsize D]\n"
                 "          [--storage vector|mapped] [--partition-rows N]\n"
                 "          [--parallelism P] [--metrics-every N]\n"
                 "          [--dump-metrics FILE] [--serve PORT]\n"
                 "          [--audit 1] [--vacuum-age N]\n"
                 "       %s verify <dir> [--backend ...] [--retain R]\n"
                 "          [--log-format rewrite|segmented] [--dbsize D]\n"
                 "          [--storage vector|mapped] [--partition-rows N]\n"
                 "          [--audit 1] [--vacuum-age N]\n"
                 "       %s audit-verify <dir>\n",
                 argv[0], argv[0], argv[0]);
    return 2;
  }
  const std::string mode = argv[1];
  const std::string dir = argv[2];
  DemoFlags flags;
  for (int i = 3; i + 1 < argc; i += 2) {
    if (std::strcmp(argv[i], "--batches") == 0) {
      flags.batches = static_cast<uint32_t>(std::atoi(argv[i + 1]));
    } else if (std::strcmp(argv[i], "--kill-at-batch") == 0) {
      flags.kill_at = static_cast<uint32_t>(std::atoi(argv[i + 1]));
    } else if (std::strcmp(argv[i], "--retain") == 0) {
      flags.retain = static_cast<uint32_t>(std::atoi(argv[i + 1]));
    } else if (std::strcmp(argv[i], "--dbsize") == 0) {
      flags.dbsize = std::strtoull(argv[i + 1], nullptr, 10);
    } else if (std::strcmp(argv[i], "--parallelism") == 0) {
      flags.parallelism = std::atoi(argv[i + 1]);
    } else if (std::strcmp(argv[i], "--metrics-every") == 0) {
      flags.metrics_every = static_cast<uint32_t>(std::atoi(argv[i + 1]));
    } else if (std::strcmp(argv[i], "--dump-metrics") == 0) {
      flags.dump_metrics = argv[i + 1];
    } else if (std::strcmp(argv[i], "--serve") == 0) {
      flags.serve = std::atoi(argv[i + 1]);
    } else if (std::strcmp(argv[i], "--audit") == 0) {
      flags.audit = std::atoi(argv[i + 1]) != 0;
    } else if (std::strcmp(argv[i], "--vacuum-age") == 0) {
      flags.vacuum_age = static_cast<uint32_t>(std::atoi(argv[i + 1]));
    } else if (std::strcmp(argv[i], "--partition-rows") == 0) {
      flags.partition_rows = std::strtoull(argv[i + 1], nullptr, 10);
    } else if (std::strcmp(argv[i], "--storage") == 0) {
      const std::string storage = argv[i + 1];
      if (storage == "vector") {
        flags.storage = StorageBackend::kVector;
      } else if (storage == "mapped") {
        flags.storage = StorageBackend::kMapped;
      } else {
        std::fprintf(stderr, "unknown storage backend '%s'\n",
                     storage.c_str());
        return 2;
      }
    } else if (std::strcmp(argv[i], "--log-format") == 0) {
      const std::string format = argv[i + 1];
      if (format == "rewrite") {
        flags.log_format = LogFormat::kSingleFile;
      } else if (format == "segmented") {
        flags.log_format = LogFormat::kSegmented;
      } else {
        std::fprintf(stderr, "unknown log format '%s'\n", format.c_str());
        return 2;
      }
    } else if (std::strcmp(argv[i], "--backend") == 0) {
      const std::string backend = argv[i + 1];
      if (backend == "delete") {
        flags.backend = BackendKind::kDelete;
      } else if (backend == "cold") {
        flags.backend = BackendKind::kColdStorage;
      } else if (backend == "summary") {
        flags.backend = BackendKind::kSummary;
      } else {
        std::fprintf(stderr, "unknown backend '%s'\n", backend.c_str());
        return 2;
      }
    }
  }
  if (mode == "run") return Run(dir, flags);
  if (mode == "verify") return Verify(dir, flags);
  if (mode == "audit-verify") return AuditVerify(dir);
  std::fprintf(stderr, "unknown mode '%s'\n", mode.c_str());
  return 2;
}
