// Copyright 2026 The AmnesiaDB Authors
//
// Kill-and-recover demo: the CI smoke test for the durability subsystem.
//
//   crash_recovery_demo run <dir> [--batches N] [--kill-at-batch K]
//       Runs the Data Amnesia Simulator with async checkpointing into
//       <dir>. With --kill-at-batch K the process dies via _Exit(42)
//       right after batch K — no destructors, no writer join: whatever
//       reached the filesystem is all recovery gets.
//
//   crash_recovery_demo verify <dir>
//       Recovers from <dir> (newest valid manifest + event-log tail
//       replay), re-runs the same seed to the batch the log proves was
//       completed, and asserts the recovered table is bit-identical to
//       the uncrashed reference — contents, amnesia metadata and ingest
//       cursor — and that the row counts match what the event log
//       records. Exits non-zero on any mismatch.

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "durability/checkpointer.h"
#include "durability/event_log.h"
#include "sim/simulator.h"
#include "storage/checkpoint.h"

using namespace amnesia;

namespace {

constexpr int kCrashExitCode = 42;

SimulationConfig DemoConfig(const std::string& dir, uint32_t batches) {
  SimulationConfig config;
  config.seed = 20260731;
  config.dbsize = 2000;
  config.upd_perc = 0.3;
  config.num_batches = batches;
  config.queries_per_batch = 50;
  config.policy.kind = PolicyKind::kFifo;
  config.backend = BackendKind::kDelete;
  // Access counts are not journaled; keep recovery bit-exact.
  config.record_access = false;
  config.checkpoint_every_n_batches = 2;
  config.checkpoint_dir = dir;
  config.checkpoint_async = true;
  return config;
}

int Fail(const std::string& what) {
  std::fprintf(stderr, "FAIL: %s\n", what.c_str());
  return 1;
}

int Run(const std::string& dir, uint32_t batches, uint32_t kill_at) {
  auto sim = Simulator::Make(DemoConfig(dir, batches));
  if (!sim.ok()) return Fail("config: " + sim.status().ToString());
  Status st = sim.value()->Initialize();
  if (!st.ok()) return Fail("initialize: " + st.ToString());
  for (uint32_t b = 1; b <= batches; ++b) {
    auto metrics = sim.value()->StepBatch();
    if (!metrics.ok()) return Fail("batch: " + metrics.status().ToString());
    std::printf("batch %u: inserted=%llu active=%llu forgotten=%llu\n", b,
                static_cast<unsigned long long>(metrics->inserted),
                static_cast<unsigned long long>(metrics->active),
                static_cast<unsigned long long>(metrics->forgotten_total));
    if (b == kill_at) {
      std::printf("simulating crash after batch %u (_Exit, no cleanup)\n",
                  b);
      std::fflush(stdout);
      std::_Exit(kCrashExitCode);
    }
  }
  st = sim.value()->FlushCheckpoints();
  if (!st.ok()) return Fail("flush: " + st.ToString());
  std::printf("completed %u batches without crashing\n", batches);
  return 0;
}

int Verify(const std::string& dir) {
  auto recovered = Recover(dir, dir + "/events.log");
  if (!recovered.ok()) {
    return Fail("recover: " + recovered.status().ToString());
  }
  if (recovered->shards.size() != 1) return Fail("expected one shard");
  const Table& table = recovered->shards[0];

  // The log is the source of truth for how far the crashed run got: one
  // kBeginBatch per completed StepBatch (the demo kills at a batch
  // boundary) and every appended row.
  auto events = ReadEventLogFile(dir + "/events.log");
  if (!events.ok()) return Fail("log: " + events.status().ToString());
  uint32_t batches_completed = 0;
  uint64_t rows_logged = 0;
  for (const Event& event : events.value()) {
    if (event.kind == EventKind::kBeginBatch) ++batches_completed;
    if (event.kind == EventKind::kAppendRows) {
      rows_logged += event.columns[0].size();
    }
  }
  std::printf("recovered from checkpoint %llu: replayed %llu of %zu "
              "events, %u batches completed before the crash\n",
              static_cast<unsigned long long>(recovered->checkpoint_id),
              static_cast<unsigned long long>(recovered->events_replayed),
              events.value().size(), batches_completed);

  if (table.lifetime_inserted() != rows_logged) {
    return Fail("row count mismatch: table says " +
                std::to_string(table.lifetime_inserted()) +
                " rows ever inserted, event log says " +
                std::to_string(rows_logged));
  }
  if (recovered->ingest_cursor != rows_logged) {
    return Fail("ingest cursor diverges from the event log");
  }

  // Reference: the identical simulation, uncrashed, to the same batch.
  SimulationConfig plain = DemoConfig(dir, batches_completed);
  plain.checkpoint_every_n_batches = 0;
  plain.checkpoint_dir.clear();
  auto reference = Simulator::Make(plain);
  if (!reference.ok()) {
    return Fail("reference config: " + reference.status().ToString());
  }
  Status st = reference.value()->Initialize();
  if (!st.ok()) return Fail("reference init: " + st.ToString());
  for (uint32_t b = 0; b < batches_completed; ++b) {
    auto metrics = reference.value()->StepBatch();
    if (!metrics.ok()) {
      return Fail("reference batch: " + metrics.status().ToString());
    }
  }

  if (CheckpointTable(table) != CheckpointTable(reference.value()->table())) {
    return Fail("recovered table differs from the uncrashed reference");
  }
  std::printf("RECOVERY OK: %llu rows, %llu active — bit-identical to an "
              "uncrashed run of %u batches\n",
              static_cast<unsigned long long>(table.num_rows()),
              static_cast<unsigned long long>(table.num_active()),
              batches_completed);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) {
    std::fprintf(stderr,
                 "usage: %s run <dir> [--batches N] [--kill-at-batch K]\n"
                 "       %s verify <dir>\n",
                 argv[0], argv[0]);
    return 2;
  }
  const std::string mode = argv[1];
  const std::string dir = argv[2];
  uint32_t batches = 10;
  uint32_t kill_at = 0;
  for (int i = 3; i + 1 < argc; i += 2) {
    if (std::strcmp(argv[i], "--batches") == 0) {
      batches = static_cast<uint32_t>(std::atoi(argv[i + 1]));
    } else if (std::strcmp(argv[i], "--kill-at-batch") == 0) {
      kill_at = static_cast<uint32_t>(std::atoi(argv[i + 1]));
    }
  }
  if (mode == "run") return Run(dir, batches, kill_at);
  if (mode == "verify") return Verify(dir);
  std::fprintf(stderr, "unknown mode '%s'\n", mode.c_str());
  return 2;
}
