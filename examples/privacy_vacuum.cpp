// Copyright 2026 The AmnesiaDB Authors
//
// Privacy-mandated forgetting (§1: "observations that are constrained by
// a Data Privacy Act should be forgotten within the legally defined time
// frame"; §5 cites TSQL2-style vacuuming and Snapchat as the proof of
// need).
//
// A table of user events runs under a generous storage budget, but a
// retention regulation demands that events older than RETENTION batches be
// unrecoverable. The controller's VacuumExpired() with the delete backend
// forgets them *physically*: payloads are scrubbed, rows compacted away —
// and we verify a full scan (which sees even forgotten tuples!) finds
// nothing.
//
//   $ ./build/examples/privacy_vacuum

#include <cstdio>

#include "amnesia/controller.h"
#include "amnesia/uniform.h"
#include "query/scan.h"
#include "workload/distribution.h"

using namespace amnesia;

namespace {
constexpr uint32_t kRetentionBatches = 2;
}

int main() {
  auto table_or = Table::Make(Schema::SingleColumn("event", 0, 1'000'000));
  if (!table_or.ok()) return 1;
  Table table = std::move(table_or).value();

  DistributionOptions dist;
  dist.kind = DistributionKind::kUniform;
  dist.domain_hi = 1'000'000;
  ValueGenerator gen = ValueGenerator::Make(dist).value();
  Rng rng(99);

  UniformPolicy policy;
  ControllerOptions opts;
  opts.dbsize_budget = 1'000'000;       // storage is NOT the constraint here
  opts.backend = BackendKind::kDelete;  // privacy demands physical removal
  opts.scrub_on_delete = true;
  auto ctrl_or = AmnesiaController::Make(opts, &policy, &table);
  if (!ctrl_or.ok()) {
    std::fprintf(stderr, "%s\n", ctrl_or.status().ToString().c_str());
    return 1;
  }
  AmnesiaController& ctrl = ctrl_or.value();

  std::printf("Retention regulation: events expire after %u batches\n\n",
              kRetentionBatches);
  std::printf("week,ingested,vacuumed,rows_physical,rows_active\n");
  for (int week = 0; week < 8; ++week) {
    if (week > 0) table.BeginBatch();
    for (int i = 0; i < 500; ++i) {
      if (!table.AppendRow({gen.Next(&rng)}).ok()) return 1;
    }
    const auto vacuumed = ctrl.VacuumExpired(kRetentionBatches);
    if (!vacuumed.ok()) {
      std::fprintf(stderr, "%s\n", vacuumed.status().ToString().c_str());
      return 1;
    }
    std::printf("%d,500,%llu,%llu,%llu\n", week,
                static_cast<unsigned long long>(vacuumed.value()),
                static_cast<unsigned long long>(table.num_rows()),
                static_cast<unsigned long long>(table.num_active()));
  }

  // Compliance audit: even a raw physical scan (Visibility::kAll — the
  // view that normally still sees mark-only-forgotten tuples) must contain
  // at most RETENTION+1 batches of data.
  const auto audit =
      ScanRange(table, RangePredicate::All(0), Visibility::kAll);
  if (!audit.ok()) return 1;
  BatchId oldest = table.current_batch();
  for (RowId r : audit.value().rows) {
    if (table.batch_of(r) < oldest) oldest = table.batch_of(r);
  }
  std::printf(
      "\nCompliance audit: physical scan sees %llu rows; oldest batch "
      "present = %u (current = %u, retention = %u) -> %s\n",
      static_cast<unsigned long long>(audit.value().size()), oldest,
      table.current_batch(), kRetentionBatches,
      table.current_batch() - oldest <= kRetentionBatches ? "COMPLIANT"
                                                          : "VIOLATION");
  return 0;
}
