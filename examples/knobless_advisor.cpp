// Copyright 2026 The AmnesiaDB Authors
//
// The knobless loop the paper's introduction calls for ("this calls for a
// mostly knobless DBMS"): observe the live query workload (§2.2), let the
// advisor pick the amnesia policy, and compare the precision it achieves
// against a deliberately mismatched choice.
//
// Scenario: a serial event stream whose users only query recent data.
// The advisor must discover that FIFO suffices (§4.2) — and FIFO then
// beats the anterograde policy (which keeps old data those users never
// ask for) by a wide margin.
//
//   $ ./build/examples/knobless_advisor

#include <cstdio>

#include "metrics/advisor.h"
#include "sim/simulator.h"

using namespace amnesia;

namespace {

SimulationConfig StreamConfig(PolicyKind policy) {
  SimulationConfig config;
  config.seed = 31337;
  config.dbsize = 1000;
  config.upd_perc = 0.6;
  config.num_batches = 10;
  config.queries_per_batch = 400;
  config.distribution.kind = DistributionKind::kSerial;
  config.policy.kind = policy;
  config.query.anchor = QueryAnchor::kRecentTuple;
  config.query.recency_bias = 12.0;
  return config;
}

double FinalPrecision(PolicyKind policy) {
  auto sim = Simulator::Make(StreamConfig(policy)).value();
  return sim->Run().value().batches.back().mean_pf;
}

}  // namespace

int main() {
  // Phase 1 — observe. Run a short profiling window with the neutral
  // uniform policy while the stats collector watches every query result.
  SimulationConfig probe = StreamConfig(PolicyKind::kUniform);
  probe.num_batches = 3;
  auto sim_or = Simulator::Make(probe);
  if (!sim_or.ok()) {
    std::fprintf(stderr, "%s\n", sim_or.status().ToString().c_str());
    return 1;
  }
  Simulator& sim = *sim_or.value();
  if (!sim.Initialize().ok()) return 1;

  WorkloadStatsCollector collector(probe.distribution.domain_lo,
                                   probe.distribution.domain_hi);
  Executor probe_exec(&sim.mutable_table(), nullptr);
  RangeQueryGenerator gen = RangeQueryGenerator::Make(probe.query).value();
  for (int b = 0; b < 3; ++b) {
    if (!sim.StepBatch().ok()) return 1;
    // Shadow-profile 200 queries per round.
    for (int q = 0; q < 200; ++q) {
      const auto pred = gen.Next(sim.table(), sim.oracle(), &sim.rng());
      if (!pred.ok()) return 1;
      const auto result =
          probe_exec.ExecuteRange(pred.value(), ExecOptions{});
      if (!result.ok()) return 1;
      collector.Observe(sim.table(), pred.value(), result.value());
    }
  }

  // Phase 2 — recommend.
  const WorkloadProfile profile = collector.Profile();
  const AmnesiaAdvice advice = RecommendPolicy(profile, sim.table());
  std::printf("Observed workload profile:\n");
  std::printf("  queries:               %llu\n",
              static_cast<unsigned long long>(profile.queries));
  std::printf("  normalized access age: %.3f\n",
              profile.NormalizedAccessAge(sim.table()));
  std::printf("  top-decile fraction:   %.3f\n",
              profile.top_decile_fraction);
  std::printf("\nAdvisor recommendation: %s\n",
              std::string(PolicyKindToString(advice.policy)).c_str());
  std::printf("  rationale: %s\n", advice.rationale.c_str());

  // Phase 3 — verify. Run the full workload under the recommendation and
  // under a mismatched policy.
  const double recommended = FinalPrecision(advice.policy);
  const double mismatched = FinalPrecision(PolicyKind::kAnterograde);
  std::printf("\nFinal range precision after 10 rounds:\n");
  std::printf("  %-8s (recommended): %.4f\n",
              std::string(PolicyKindToString(advice.policy)).c_str(),
              recommended);
  std::printf("  %-8s (mismatched):  %.4f\n",
              std::string(PolicyKindToString(PolicyKind::kAnterograde)).c_str(),
              mismatched);
  std::printf("\n%s\n", recommended > mismatched
                            ? "The advisor's choice wins — no knob was "
                              "turned by a human."
                            : "Unexpected: mismatched policy won.");
  return recommended > mismatched ? 0 : 1;
}
