// Copyright 2026 The AmnesiaDB Authors
//
// Quickstart: run the Data Amnesia Simulator end to end with the uniform
// policy and print the per-round precision plus the final amnesia map.
//
//   $ ./build/examples/quickstart
//
// See examples/streaming_sensor.cpp and examples/weather_retention.cpp for
// domain-specific uses of the public API.

#include <cstdio>

#include "sim/experiments.h"
#include "sim/simulator.h"
#include "common/ascii_chart.h"

int main() {
  using namespace amnesia;

  // Configure the paper's Figure-3 setup: dbsize=1000, 80% update
  // volatility, 10 rounds, 1000 range queries per round.
  SimulationConfig config =
      Figure3Config(DistributionKind::kNormal, PolicyKind::kUniform);

  auto sim_or = Simulator::Make(config);
  if (!sim_or.ok()) {
    std::fprintf(stderr, "setup failed: %s\n",
                 sim_or.status().ToString().c_str());
    return 1;
  }
  auto& sim = *sim_or.value();

  auto result_or = sim.Run();
  if (!result_or.ok()) {
    std::fprintf(stderr, "run failed: %s\n",
                 result_or.status().ToString().c_str());
    return 1;
  }
  const SimulationResult& result = result_or.value();

  std::printf("batch,active,forgotten_total,avg_rf,avg_mf,precision,error_margin\n");
  for (const BatchMetrics& m : result.batches) {
    std::printf("%u,%llu,%llu,%.2f,%.2f,%.4f,%.4f\n", m.batch,
                static_cast<unsigned long long>(m.active),
                static_cast<unsigned long long>(m.forgotten_total), m.avg_rf,
                m.avg_mf, m.mean_pf, m.error_margin);
  }

  ShadeMap map(60);
  map.AddRow("uniform", result.timeline_retention);
  map.SetCaption("insertion timeline ->  (bright = still active)");
  std::printf("\nAmnesia map after %u batches:\n%s", config.num_batches,
              map.Render().c_str());

  std::printf("\nController: %llu tuples forgotten over %llu rounds\n",
              static_cast<unsigned long long>(result.controller.tuples_forgotten),
              static_cast<unsigned long long>(result.controller.rounds));
  return 0;
}
